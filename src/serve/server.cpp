#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <utility>

#include "common/thread_pool.hpp"
#include "common/workspace.hpp"
#include "core/incremental_repart.hpp"
#include "hypergraph/builder.hpp"
#include "hypergraph/io.hpp"
#include "metrics/balance.hpp"
#include "metrics/cut.hpp"
#include "obs/stats_stream.hpp"
#include "obs/trace.hpp"
#include "partition/partitioner.hpp"

namespace hgr::serve {

namespace {

std::string ok_prefix(std::uint64_t id) { return "OK " + std::to_string(id); }

std::string err_line(std::uint64_t id, const std::string& why) {
  return "ERR " + std::to_string(id) + " " + why;
}

/// The part with the least weight under `p` — where ADD places new
/// vertices until the next epoch dispatch rebalances properly.
PartId lightest_part(const Hypergraph& h, const Partition& p) {
  IdVector<PartId, Weight> part_weights(p.k, Weight{0});
  for (const VertexId v : p.vertices())
    part_weights[p[v]] += h.vertex_weight(v);
  PartId best{0};
  for (const PartId part : p.parts())
    if (part_weights[part] < part_weights[best]) best = part;
  return best;
}

/// Copy `h`'s structure into a fresh builder over `new_n` vertices, with
/// `remap[v]` giving each old vertex's new id (kInvalidIndex = dropped).
/// Nets shrink to their surviving pins; degenerate nets are elided by the
/// builder as usual.
HypergraphBuilder rebuild_remapped(const Hypergraph& h, Index new_n,
                                   const IdVector<VertexId, Index>& remap) {
  HypergraphBuilder b(new_n);
  std::vector<Index> pins;
  for (const NetId net : h.nets()) {
    pins.clear();
    for (const VertexId v : h.pins(net))
      if (remap[v] != kInvalidIndex) pins.push_back(remap[v]);
    if (pins.size() >= 2) b.add_net(pins, h.net_cost(net));
  }
  for (const VertexId v : h.vertices()) {
    if (remap[v] == kInvalidIndex) continue;
    b.set_vertex_weight(remap[v], h.vertex_weight(v));
    b.set_vertex_size(remap[v], h.vertex_size(v));
  }
  return b;
}

IdVector<VertexId, Index> identity_remap(const Hypergraph& h) {
  IdVector<VertexId, Index> remap(h.num_vertices());
  for (const VertexId v : h.vertices()) remap[v] = v.v;
  return remap;
}

}  // namespace

/// Everything the worker keeps warm across requests: the scratch arenas
/// every dispatch reuses and (when configured) the shared-memory pool.
struct Server::Runtime {
  explicit Runtime(Index num_threads) {
    if (num_threads > 1) {
      pool.emplace(static_cast<int>(num_threads));
      ws.set_pool(&*pool);
    }
  }
  Workspace ws;
  std::optional<ThreadPool> pool;
};

/// Per-graph warm state, owned by the worker thread. The
/// IncrementalRepartitioner carries the gain-cache fast path and its drift
/// baseline; `h`/`p` are the live hypergraph and its current partition.
struct Server::GraphState {
  explicit GraphState(Workspace* ws) : inc(ws) {}
  Hypergraph h;
  Partition p;
  Index k = 0;
  Weight alpha = 100;
  double epsilon = 0.05;
  IncrementalRepartitioner inc;
};

Server::Server(ServeConfig cfg, ReplyFn reply)
    : cfg_(std::move(cfg)), reply_(std::move(reply)) {
  if (cfg_.queue_capacity == 0) cfg_.queue_capacity = 1;
  runtime_ = std::make_unique<Runtime>(cfg_.num_threads);
  worker_ = std::thread(  // hgr-lint: thread-ok (service worker; joined in stop())
      [this] { worker_loop(); });
}

Server::~Server() { stop(); }

std::uint64_t Server::submit(const std::string& line) {
  static obs::CachedCounter requests_counter("serve.requests");
  static obs::CachedCounter shed_counter("serve.shed");
  static obs::CachedCounter errors_counter("serve.errors");
  PendingRequest pr;
  pr.req = parse_request(line);
  if (pr.req.kind == RequestKind::kInvalid && pr.req.error.empty())
    return 0;  // blank line or comment: not a request
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    pr.req.id = next_id_++;
  }
  const std::uint64_t id = pr.req.id;
  if (pr.req.kind == RequestKind::kInvalid) {
    errors_counter += 1;
    reply_to(pr, err_line(id, pr.req.error));
    return id;
  }
  bool shed = false;
  bool closed = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!accepting_) {
      shed = true;
      closed = true;
    } else if (queued_ >= cfg_.queue_capacity) {
      // Backpressure: reply now instead of queueing unbounded latency.
      shed = true;
    } else {
      requests_counter += 1;
      GraphQueue& q = queues_[pr.req.graph];
      if (!q.in_rotation) {
        q.in_rotation = true;
        rotation_.push_back(pr.req.graph);
      }
      q.pending.push_back(std::move(pr));
      ++queued_;
      obs::gauge("serve.queue_depth").set(
          static_cast<std::int64_t>(queued_));
    }
  }
  if (shed) {
    shed_counter += 1;
    reply_to(pr, "BUSY " + std::to_string(id) +
                     (closed ? " server stopping" : " queue full"));
    return id;
  }
  work_cv_.notify_one();
  return id;
}

void Server::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  // A stopped worker sheds every leftover and zeroes queued_ on its way
  // out, so this predicate terminates under shutdown too.
  drain_cv_.wait(lock, [this] { return queued_ == 0 && !in_flight_; });
}

void Server::stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    accepting_ = false;
    stopping_ = true;
  }
  stop_.request_stop();  // interrupts in-flight backoff / stalls
  work_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  drain_cv_.notify_all();
}

void Server::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    accepting_ = false;  // let the queue drain without new arrivals
  }
  drain();
  stop();
}

std::size_t Server::queue_depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queued_;
}

std::uint64_t Server::replied() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return replied_;
}

void Server::reply_to(const PendingRequest& pr, const std::string& text) {
  static obs::CachedHistogram latency("serve.request_ns");
  latency.record(static_cast<std::int64_t>(pr.timer.seconds() * 1e9));
  {
    const std::lock_guard<std::mutex> lock(reply_mutex_);
    if (reply_) reply_(text);
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++replied_;
  }
  drain_cv_.notify_all();
}

Server::GraphState* Server::find_graph(const std::string& name) {
  const auto it = graphs_.find(name);
  return it == graphs_.end() ? nullptr : it->second.get();
}

void Server::worker_loop() {
  static obs::CachedCounter shed_counter("serve.shed");
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    if (rotation_.empty()) {
      drain_cv_.notify_all();
      // Idle between requests — the common daemon state. Service any
      // pending SIGUSR1 stats dump here: phase-close flushing only fires
      // while work is running, so an idle dump request would otherwise
      // sit forever (src/obs/stats_stream.hpp).
      lock.unlock();
      obs::flush_pending_stats_dump();
      lock.lock();
      if (stopping_ || !rotation_.empty()) continue;
      work_cv_.wait_for(lock, std::chrono::milliseconds(50));
      continue;
    }
    const std::string graph = rotation_.front();
    rotation_.pop_front();
    GraphQueue& q = queues_[graph];
    q.in_rotation = false;
    std::vector<PendingRequest> batch;
    batch.push_back(std::move(q.pending.front()));
    q.pending.pop_front();
    // Coalesce a run of DELTA requests against the same graph into one
    // epoch dispatch: their weight updates compose (last write per vertex
    // wins) and the union of changed vertices seeds a single O(delta)
    // fast-path call instead of one full dispatch each.
    if (batch.front().req.kind == RequestKind::kDelta) {
      while (!q.pending.empty() &&
             q.pending.front().req.kind == RequestKind::kDelta) {
        batch.push_back(std::move(q.pending.front()));
        q.pending.pop_front();
      }
    }
    queued_ -= batch.size();
    obs::gauge("serve.queue_depth").set(static_cast<std::int64_t>(queued_));
    if (!q.pending.empty()) {
      q.in_rotation = true;
      rotation_.push_back(graph);
    }
    in_flight_ = true;
    lock.unlock();
    execute_batch(graph, std::move(batch));
    lock.lock();
    in_flight_ = false;
    if (queued_ == 0 && rotation_.empty()) drain_cv_.notify_all();
  }
  // Stopping: everything still queued is shed, not silently dropped —
  // every admitted request gets exactly one reply.
  std::vector<PendingRequest> leftovers;
  for (auto& [name, q] : queues_) {
    for (auto& pr : q.pending) leftovers.push_back(std::move(pr));
    q.pending.clear();
    q.in_rotation = false;
  }
  rotation_.clear();
  queued_ = 0;
  obs::gauge("serve.queue_depth").set(0);
  lock.unlock();
  for (const PendingRequest& pr : leftovers) {
    shed_counter += 1;
    reply_to(pr, "BUSY " + std::to_string(pr.req.id) + " server stopping");
  }
  drain_cv_.notify_all();
}

void Server::execute_batch(const std::string& graph,
                           std::vector<PendingRequest> batch) {
  static obs::CachedCounter batches_counter("serve.batches");
  static obs::CachedCounter coalesced_counter("serve.coalesced");
  static obs::CachedCounter errors_counter("serve.errors");
  static obs::CachedCounter degraded_counter("serve.degraded");
  batches_counter += 1;
  if (batch.size() > 1)
    coalesced_counter += static_cast<std::uint64_t>(batch.size() - 1);

  const auto fail_batch = [&](const std::string& why) {
    for (const PendingRequest& pr : batch) {
      errors_counter += 1;
      reply_to(pr, err_line(pr.req.id, why));
    }
  };

  // Injected faults at the request boundary (FaultSite::kServe): a delay
  // models a slow backend, a stall a wedged one (parked until shutdown or
  // the deadlock timeout, then failed), a throw an outright error.
  if (cfg_.fault_plan) {
    if (const auto d = cfg_.fault_plan->check(fault::FaultSite::kServe, 0)) {
      if (d->kind == fault::FaultKind::kDelay) {
        stop_.wait_for(d->delay_ms / 1000.0);
      } else {
        if (d->kind == fault::FaultKind::kStall)
          stop_.wait_for(cfg_.deadlock_timeout);
        fail_batch(d->description);
        return;
      }
    }
  }

  const Request& head = batch.front().req;
  try {
    if (head.kind == RequestKind::kLoad) {
      auto state = std::make_unique<GraphState>(&runtime_->ws);
      state->h = read_hmetis_file(head.path);
      state->k = head.k > 0 ? head.k : cfg_.default_k;
      state->alpha = head.alpha >= 0 ? head.alpha : cfg_.default_alpha;
      state->epsilon =
          head.epsilon > 0.0 ? head.epsilon : cfg_.default_epsilon;
      PartitionConfig pcfg = make_repart_config(*state).partition;
      state->p = partition_hypergraph(state->h, pcfg);
      const Weight cut = connectivity_cut(state->h, state->p);
      state->inc.note_full(cut);
      const std::string reply =
          ok_prefix(head.id) + " graph=" + graph +
          " n=" + std::to_string(state->h.num_vertices()) +
          " nets=" + std::to_string(state->h.num_nets()) +
          " k=" + std::to_string(state->k) + " cut=" + std::to_string(cut) +
          " tier=static";
      graphs_[graph] = std::move(state);  // reload replaces warm state
      reply_to(batch.front(), reply);
      return;
    }

    GraphState* gs = find_graph(graph);
    if (gs == nullptr) {
      fail_batch("unknown graph '" + graph + "' (LOAD it first)");
      return;
    }

    EpochDelta delta;
    bool dispatch = true;
    std::string static_reply;
    switch (head.kind) {
      case RequestKind::kDelta:
        delta = apply_delta_batch(*gs, batch);
        break;
      case RequestKind::kAdd:
        delta = apply_add(*gs, head);
        break;
      case RequestKind::kRemove:
        delta = apply_remove(*gs, head);
        break;
      case RequestKind::kSwap: {
        Hypergraph next = read_hmetis_file(head.path);
        if (next.num_vertices() == gs->h.num_vertices()) {
          // Same vertex space: keep the old assignment, let a full epoch
          // decide what moves (delta unknown => full tier).
          gs->h = std::move(next);
        } else {
          gs->h = std::move(next);
          PartitionConfig pcfg = make_repart_config(*gs).partition;
          gs->p = partition_hypergraph(gs->h, pcfg);
          const Weight cut = connectivity_cut(gs->h, gs->p);
          gs->inc.note_full(cut);
          dispatch = false;
          static_reply = ok_prefix(head.id) + " graph=" + graph +
                         " n=" + std::to_string(gs->h.num_vertices()) +
                         " cut=" + std::to_string(cut) + " tier=static";
        }
        break;
      }
      case RequestKind::kRepart:
        break;  // unknown delta: full repartition
      case RequestKind::kLoad:
      case RequestKind::kInvalid:
        fail_batch("internal: unexpected request kind");
        return;
    }
    if (!dispatch) {
      reply_to(batch.front(), static_reply);
      return;
    }

    const RepartitionerConfig rcfg = make_repart_config(*gs);
    GuardedRepartitionResult out =
        run_tiered_repartition(RepartAlgorithm::kHypergraphRepart, gs->h,
                               Graph{}, gs->p, rcfg, gs->inc, delta);
    if (out.degraded) degraded_counter += 1;
    gs->p = out.result.partition;
    const std::string tail =
        " graph=" + graph +
        " cut=" + std::to_string(out.result.cost.comm_volume) +
        " mig=" + std::to_string(out.result.cost.migration_volume) +
        " tier=" + to_string(out.tier) +
        " degraded=" + (out.degraded ? std::string("1") : std::string("0")) +
        " retries=" + std::to_string(out.retries) +
        " coalesced=" + std::to_string(batch.size() - 1);
    for (const PendingRequest& pr : batch)
      reply_to(pr, ok_prefix(pr.req.id) + tail);
  } catch (const std::exception& e) {
    // A bad file path, a malformed hypergraph, an out-of-range vertex —
    // client-induced failures must fail the request, never the daemon.
    fail_batch(e.what());
  }
}

RepartitionerConfig Server::make_repart_config(const GraphState& gs) {
  RepartitionerConfig rcfg;
  rcfg.partition.num_parts = gs.k;
  rcfg.partition.epsilon = gs.epsilon;
  rcfg.partition.seed = cfg_.seed;
  rcfg.partition.num_threads = cfg_.num_threads;
  rcfg.partition.incremental = cfg_.incremental;
  rcfg.partition.check_level = cfg_.check_level;
  rcfg.partition.fault_plan = cfg_.fault_plan;
  rcfg.alpha = gs.alpha;
  rcfg.num_ranks = cfg_.num_ranks;
  rcfg.deadlock_timeout = cfg_.deadlock_timeout;
  rcfg.max_retries = cfg_.max_retries;
  rcfg.retry_backoff_seconds = cfg_.retry_backoff_seconds;
  rcfg.epoch_time_budget = cfg_.epoch_time_budget;
  rcfg.fallback = cfg_.fallback;
  rcfg.stop = &stop_;
  return rcfg;
}

EpochDelta Server::apply_delta_batch(
    GraphState& gs, const std::vector<PendingRequest>& batch) {
  // Compose every update in arrival order (last write per vertex wins),
  // then seed the epoch delta with the union of touched vertices.
  IdVector<VertexId, bool> changed(gs.h.num_vertices(), false);
  for (const PendingRequest& pr : batch) {
    for (const WeightUpdate& u : pr.req.updates) {
      if (u.v.v < 0 || u.v.v >= gs.h.num_vertices())
        throw std::invalid_argument("DELTA: vertex " + std::to_string(u.v.v) +
                                    " out of range");
      gs.h.set_vertex_weight(u.v, u.w);
      changed[u.v] = true;
    }
  }
  EpochDelta delta;
  for (const VertexId v : gs.h.vertices())
    if (changed[v]) delta.changed.push_back(v);
  delta.removed = 0;
  delta.prev_vertices = gs.h.num_vertices();
  delta.known = true;
  return delta;
}

EpochDelta Server::apply_add(GraphState& gs, const Request& req) {
  const Index old_n = gs.h.num_vertices();
  const Index add_n = static_cast<Index>(req.add_weights.size());
  HypergraphBuilder b =
      rebuild_remapped(gs.h, old_n + add_n, identity_remap(gs.h));
  for (Index i = 0; i < add_n; ++i) {
    b.set_vertex_weight(old_n + i, req.add_weights[static_cast<std::size_t>(i)]);
    b.set_vertex_size(old_n + i, 1);
  }
  const PartId target = lightest_part(gs.h, gs.p);
  gs.h = b.finalize();
  gs.p.assignment.resize(gs.h.num_vertices(), target);
  EpochDelta delta;
  for (Index i = 0; i < add_n; ++i)
    delta.changed.push_back(VertexId{old_n + i});
  delta.removed = 0;
  delta.prev_vertices = old_n;
  delta.known = true;
  return delta;
}

EpochDelta Server::apply_remove(GraphState& gs, const Request& req) {
  const Index old_n = gs.h.num_vertices();
  IdVector<VertexId, bool> drop(old_n, false);
  for (const VertexId v : req.remove) {
    if (v.v < 0 || v.v >= old_n)
      throw std::invalid_argument("REMOVE: vertex " + std::to_string(v.v) +
                                  " out of range");
    drop[v] = true;
  }
  // Survivors sharing a net with a dropped vertex are the repair frontier.
  IdVector<VertexId, bool> touched(old_n, false);
  for (const VertexId v : gs.h.vertices()) {
    if (!drop[v]) continue;
    for (const NetId net : gs.h.incident_nets(v))
      for (const VertexId u : gs.h.pins(net))
        if (!drop[u]) touched[u] = true;
  }
  IdVector<VertexId, Index> remap(old_n);
  Index new_n = 0;
  for (const VertexId v : gs.h.vertices())
    remap[v] = drop[v] ? kInvalidIndex : new_n++;
  if (new_n == 0)
    throw std::invalid_argument("REMOVE: cannot drop every vertex");
  HypergraphBuilder b = rebuild_remapped(gs.h, new_n, remap);
  Partition next(gs.p.k, new_n);
  EpochDelta delta;
  for (const VertexId v : gs.h.vertices()) {
    if (remap[v] == kInvalidIndex) continue;
    next[VertexId{remap[v]}] = gs.p[v];
    if (touched[v]) delta.changed.push_back(VertexId{remap[v]});
  }
  gs.h = b.finalize();
  gs.p = std::move(next);
  delta.removed = old_n - new_n;
  delta.prev_vertices = old_n;
  delta.known = true;
  return delta;
}

}  // namespace hgr::serve
