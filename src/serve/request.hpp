// The hgr_serve line protocol: one request per newline-terminated line
// (docs/SERVING.md).
//
//   LOAD <graph> <path> [k=N] [alpha=A] [eps=F]   load + static partition
//   DELTA <graph> <v>:<w> [<v>:<w> ...]           weight updates, one epoch
//   ADD <graph> <w> [<w> ...]                     append vertices
//   REMOVE <graph> <v> [<v> ...]                  drop vertices
//   SWAP <graph> <path>                           replace the structure
//   REPART <graph>                                force a full epoch
//
// Parsing is kept free of any server state so it can be unit-tested (and
// fuzzed) in isolation; parse_request never throws — malformed input comes
// back as RequestKind::kInvalid with `error` describing the defect, which
// the daemon turns into an ERR reply instead of dying on bad client input.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace hgr::serve {

enum class RequestKind {
  kLoad,
  kDelta,
  kAdd,
  kRemove,
  kSwap,
  kRepart,
  kInvalid,
};

const char* to_string(RequestKind kind);

/// One vertex weight update inside a DELTA request.
struct WeightUpdate {
  VertexId v = kInvalidVertex;
  Weight w = 0;
};

struct Request {
  RequestKind kind = RequestKind::kInvalid;
  /// Assigned at admission (monotonic per server); echoed in every reply
  /// so clients can match replies to pipelined requests.
  std::uint64_t id = 0;
  std::string graph;                  // target hypergraph name
  std::string path;                   // kLoad / kSwap: hMETIS file
  Index k = 0;                        // kLoad: parts (0 = server default)
  Weight alpha = -1;                  // kLoad: cost alpha (-1 = default)
  double epsilon = -1.0;              // kLoad: imbalance (-1 = default)
  std::vector<WeightUpdate> updates;  // kDelta
  std::vector<Weight> add_weights;    // kAdd
  std::vector<VertexId> remove;       // kRemove
  std::string error;                  // kInvalid: what was wrong
};

/// Parse one protocol line. Never throws; malformed input yields kInvalid
/// with `error` set. Blank lines and `#` comments also come back kInvalid
/// with an empty error — callers skip those silently.
Request parse_request(const std::string& line);

}  // namespace hgr::serve
