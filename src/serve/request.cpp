#include "serve/request.hpp"

#include <cstdint>
#include <cstdlib>
#include <sstream>

namespace hgr::serve {

namespace {

Request invalid(std::string why) {
  Request r;
  r.kind = RequestKind::kInvalid;
  r.error = std::move(why);
  return r;
}

bool parse_int64(const std::string& s, std::int64_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end == s.c_str() || *end != '\0') return false;
  out = v;
  return true;
}

bool parse_double(const std::string& s, double& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end == s.c_str() || *end != '\0') return false;
  out = v;
  return true;
}

}  // namespace

const char* to_string(RequestKind kind) {
  switch (kind) {
    case RequestKind::kLoad:
      return "LOAD";
    case RequestKind::kDelta:
      return "DELTA";
    case RequestKind::kAdd:
      return "ADD";
    case RequestKind::kRemove:
      return "REMOVE";
    case RequestKind::kSwap:
      return "SWAP";
    case RequestKind::kRepart:
      return "REPART";
    case RequestKind::kInvalid:
      return "INVALID";
  }
  return "INVALID";
}

Request parse_request(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> tokens;
  for (std::string tok; in >> tok;) tokens.push_back(std::move(tok));
  if (tokens.empty() || tokens[0][0] == '#') return invalid("");

  const std::string& verb = tokens[0];
  Request r;
  if (verb == "LOAD")
    r.kind = RequestKind::kLoad;
  else if (verb == "DELTA")
    r.kind = RequestKind::kDelta;
  else if (verb == "ADD")
    r.kind = RequestKind::kAdd;
  else if (verb == "REMOVE")
    r.kind = RequestKind::kRemove;
  else if (verb == "SWAP")
    r.kind = RequestKind::kSwap;
  else if (verb == "REPART")
    r.kind = RequestKind::kRepart;
  else
    return invalid("unknown verb '" + verb + "'");

  if (tokens.size() < 2) return invalid(verb + ": missing graph name");
  r.graph = tokens[1];

  switch (r.kind) {
    case RequestKind::kLoad: {
      if (tokens.size() < 3) return invalid("LOAD: missing file path");
      r.path = tokens[2];
      for (std::size_t i = 3; i < tokens.size(); ++i) {
        const std::string& opt = tokens[i];
        const std::size_t eq = opt.find('=');
        if (eq == std::string::npos)
          return invalid("LOAD: bad option '" + opt + "' (want key=value)");
        const std::string key = opt.substr(0, eq);
        const std::string val = opt.substr(eq + 1);
        std::int64_t iv = 0;
        double dv = 0.0;
        if (key == "k") {
          if (!parse_int64(val, iv) || iv < 2)
            return invalid("LOAD: bad k '" + val + "'");
          r.k = static_cast<Index>(iv);
        } else if (key == "alpha") {
          if (!parse_int64(val, iv) || iv < 0)
            return invalid("LOAD: bad alpha '" + val + "'");
          r.alpha = iv;
        } else if (key == "eps") {
          if (!parse_double(val, dv) || dv <= 0.0)
            return invalid("LOAD: bad eps '" + val + "'");
          r.epsilon = dv;
        } else {
          return invalid("LOAD: unknown option '" + key + "'");
        }
      }
      break;
    }
    case RequestKind::kDelta: {
      if (tokens.size() < 3) return invalid("DELTA: no <v>:<w> updates");
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        const std::string& pair = tokens[i];
        const std::size_t colon = pair.find(':');
        if (colon == std::string::npos)
          return invalid("DELTA: bad update '" + pair + "' (want v:w)");
        std::int64_t v = 0;
        std::int64_t w = 0;
        if (!parse_int64(pair.substr(0, colon), v) || v < 0)
          return invalid("DELTA: bad vertex in '" + pair + "'");
        if (!parse_int64(pair.substr(colon + 1), w) || w < 0)
          return invalid("DELTA: bad weight in '" + pair + "'");
        r.updates.push_back({VertexId{static_cast<Index>(v)}, Weight{w}});
      }
      break;
    }
    case RequestKind::kAdd: {
      if (tokens.size() < 3) return invalid("ADD: no vertex weights");
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        std::int64_t w = 0;
        if (!parse_int64(tokens[i], w) || w < 0)
          return invalid("ADD: bad weight '" + tokens[i] + "'");
        r.add_weights.push_back(Weight{w});
      }
      break;
    }
    case RequestKind::kRemove: {
      if (tokens.size() < 3) return invalid("REMOVE: no vertex ids");
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        std::int64_t v = 0;
        if (!parse_int64(tokens[i], v) || v < 0)
          return invalid("REMOVE: bad vertex '" + tokens[i] + "'");
        r.remove.push_back(VertexId{static_cast<Index>(v)});
      }
      break;
    }
    case RequestKind::kSwap: {
      if (tokens.size() != 3) return invalid("SWAP: want <graph> <path>");
      r.path = tokens[2];
      break;
    }
    case RequestKind::kRepart: {
      if (tokens.size() != 2) return invalid("REPART: want <graph> only");
      break;
    }
    case RequestKind::kInvalid:
      break;
  }
  return r;
}

}  // namespace hgr::serve
