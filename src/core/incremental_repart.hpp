// Incremental repartitioning: the O(delta) tier of the two-tier epoch
// system (docs/INCREMENTAL.md).
//
// The paper's premise is that adaptive computations change *incrementally*
// between epochs, yet a full multilevel V-cycle costs O(|V| + |pins|)
// regardless of how small the change was. Following the online balanced
// repartitioning line of work (PAPERS.md), this module repairs the
// previous epoch's partition directly: seed a work queue with the changed
// vertices and their one-hop neighborhood, apply bounded greedy moves
// through the GainCache under the ceil-aware balance bound, and accept the
// result only while drift — cut degradation relative to the last full-tier
// partition, plus residual imbalance — stays inside the PartitionConfig
// thresholds. Anything else escalates to the full V-cycle, which also
// refreshes the drift baseline.
#pragma once

#include <string>
#include <vector>

#include "common/workspace.hpp"
#include "core/repartitioner.hpp"
#include "hypergraph/graph.hpp"
#include "hypergraph/hypergraph.hpp"
#include "metrics/partition.hpp"

namespace hgr {

/// What changed between two consecutive epochs, in the newer epoch's
/// compact vertex ids.
struct EpochDelta {
  /// New vertices and vertices whose weight or size changed.
  std::vector<VertexId> changed;
  /// Vertices of the previous epoch that disappeared.
  Index removed = 0;
  /// Vertex count of the previous epoch (denominator context).
  Index prev_vertices = 0;
  /// False until two consecutive epochs have been observed; an unknown
  /// delta is treated as "everything changed".
  bool known = false;

  /// Changed fraction relative to the current epoch: the kAuto routing
  /// signal. 1.0 when the delta is unknown.
  double fraction(Index num_vertices) const {
    if (!known) return 1.0;
    if (num_vertices <= 0) return 1.0;
    return static_cast<double>(changed.size() + static_cast<std::size_t>(
                                                    removed)) /
           static_cast<double>(num_vertices);
  }
};

/// Diffs consecutive epochs of a scenario by base vertex id, producing the
/// EpochDelta the tier router consumes. Owned by the epoch loop; observe()
/// is called once per epoch, before repartitioning.
class EpochDeltaTracker {
 public:
  EpochDelta observe(const Graph& g, const std::vector<Index>& to_base);

 private:
  // Previous epoch's state keyed by base id: weight when present, and a
  // presence marker (weight is >= 0 for real vertices).
  std::vector<Weight> prev_weight_;
  std::vector<bool> prev_present_;
  Index prev_vertices_ = 0;
  bool have_prev_ = false;
};

/// Outcome of one fast-path attempt.
struct IncrementalOutcome {
  Partition partition;
  Weight cut = 0;          // connectivity-1 cut of `partition`
  double imbalance = 0.0;  // of `partition` on the epoch weights
  double drift = 0.0;      // (cut - baseline) / max(1, baseline)
  Index moves = 0;         // greedy moves applied
  bool attempted = false;  // moves were tried (drives `escalated`)
  bool accepted = false;   // partition is usable as the epoch's answer
  std::string reason;      // why not, when !accepted
  double seconds = 0.0;
};

class IncrementalRepartitioner {
 public:
  explicit IncrementalRepartitioner(Workspace* ws = nullptr) : ws_(ws) {}

  /// Record the cut of a full-tier (or static bootstrap) partition: the
  /// baseline that drift is measured against.
  void note_full(Weight cut) {
    baseline_cut_ = cut;
    have_baseline_ = true;
  }
  bool have_baseline() const { return have_baseline_; }
  Weight baseline_cut() const { return baseline_cut_; }

  /// Attempts the O(delta) repair of `old_p` for the epoch hypergraph `h`.
  /// Pure with respect to the baseline: only note_full() moves it.
  IncrementalOutcome try_epoch(const Hypergraph& h, const Partition& old_p,
                               const EpochDelta& delta,
                               const RepartitionerConfig& cfg);

 private:
  Workspace* ws_;
  Weight baseline_cut_ = 0;
  bool have_baseline_ = false;
};

}  // namespace hgr
