#include "core/incremental_repart.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/timer.hpp"
#include "metrics/balance.hpp"
#include "metrics/cost_model.hpp"
#include "metrics/cut.hpp"
#include "obs/trace.hpp"
#include "partition/gain_cache.hpp"

namespace hgr {

EpochDelta EpochDeltaTracker::observe(const Graph& g,
                                      const std::vector<Index>& to_base) {
  HGR_ASSERT(static_cast<Index>(to_base.size()) == g.num_vertices());
  EpochDelta delta;
  delta.prev_vertices = prev_vertices_;
  const Index n = g.num_vertices();

  std::size_t max_base = prev_present_.size();
  for (const Index base : to_base) {
    HGR_ASSERT(base >= 0);
    max_base = std::max(max_base, static_cast<std::size_t>(base) + 1);
  }

  if (have_prev_) {
    delta.known = true;
    std::vector<bool> current(max_base, false);
    for (Index v = 0; v < n; ++v) {
      const auto base = static_cast<std::size_t>(to_base[
          static_cast<std::size_t>(v)]);
      current[base] = true;
      const bool existed = base < prev_present_.size() && prev_present_[base];
      if (!existed || prev_weight_[base] != g.vertex_weight(v))
        delta.changed.push_back(VertexId{v});
    }
    for (std::size_t base = 0; base < prev_present_.size(); ++base)
      if (prev_present_[base] && !current[base]) ++delta.removed;
  }

  prev_present_.assign(max_base, false);
  prev_weight_.assign(max_base, 0);
  for (Index v = 0; v < n; ++v) {
    const auto base = static_cast<std::size_t>(to_base[
        static_cast<std::size_t>(v)]);
    prev_present_[base] = true;
    prev_weight_[base] = g.vertex_weight(v);
  }
  prev_vertices_ = n;
  have_prev_ = true;
  return delta;
}

IncrementalOutcome IncrementalRepartitioner::try_epoch(
    const Hypergraph& h, const Partition& old_p, const EpochDelta& delta,
    const RepartitionerConfig& cfg) {
  IncrementalOutcome out;
  WallTimer timer;
  out.partition = old_p;
  const Index n = h.num_vertices();
  HGR_ASSERT(old_p.num_vertices() == n);
  const IncrementalMode mode = cfg.partition.incremental;
  if (mode == IncrementalMode::kOff) {
    out.reason = "off";
    out.seconds = timer.seconds();
    return out;
  }
  if (!have_baseline_) {
    out.reason = "no_baseline";
    out.seconds = timer.seconds();
    return out;
  }
  const double frac = delta.fraction(n);
  if (mode == IncrementalMode::kAuto &&
      frac > cfg.partition.incremental_max_delta_frac) {
    out.reason = "delta_frac";
    out.seconds = timer.seconds();
    return out;
  }

  // Routing accepted the epoch: everything below counts as an attempt, and
  // a rejection below is an escalation.
  out.attempted = true;
  static obs::CachedCounter attempts("incremental.attempts");
  attempts += 1;

  const Index k = old_p.k;
  GainCache cache(h, k, old_p.assignment, ws_);
  const Weight max_pw =
      max_part_weight(h.total_vertex_weight(), k, cfg.partition.epsilon);

  // Work queue: the changed vertices plus their one-hop net neighborhood
  // (everything whose gain the delta could have altered). Unknown deltas
  // (mode kOn before two epochs were seen) seed every vertex.
  Borrowed<VertexId> queue_b(ws_);
  std::vector<VertexId>& queue = queue_b.get();
  queue.clear();
  Borrowed<bool> queued_b(ws_);
  std::vector<bool>& queued = queued_b.get();
  queued.assign(static_cast<std::size_t>(n), false);
  const auto push = [&](VertexId v) {
    if (queued[static_cast<std::size_t>(v.v)]) return;
    if (h.fixed_part(v) != kNoPart) return;
    queued[static_cast<std::size_t>(v.v)] = true;
    queue.push_back(v);
  };
  if (!delta.known) {
    for (const VertexId v : h.vertices()) push(v);
  } else {
    for (const VertexId v : delta.changed) {
      if (v.v < 0 || v.v >= n) continue;
      push(v);
      for (const NetId net : h.incident_nets(v))
        for (const VertexId u : h.pins(net)) push(u);
    }
  }

  // Move budget: generous per changed vertex, bounded well below V-cycle
  // work. Every accepted move strictly decreases the lexicographic
  // potential (overweight mass, cut, sum of squared part weights), so the
  // loop terminates even without the cap.
  const Index budget =
      delta.known
          ? std::max<Index>(256,
                            16 * static_cast<Index>(delta.changed.size()))
          : std::max<Index>(256, 4 * n);

  Borrowed<PartId> cand_b(ws_);
  std::vector<PartId>& candidates = cand_b.get();
  Borrowed<Weight> gain_to_b(ws_);
  std::vector<Weight>& gain_to = gain_to_b.get();
  gain_to.assign(static_cast<std::size_t>(k), 0);

  std::size_t head = 0;
  while (head < queue.size() && out.moves < budget) {
    const VertexId v = queue[head++];
    queued[static_cast<std::size_t>(v.v)] = false;
    const PartId from = cache.part_of(v);
    cache.candidate_parts_into(candidates, v);
    if (candidates.empty()) continue;
    const Weight leave_gain = cache.leave_gain(v);
    for (const NetId net : h.incident_nets(v)) {
      const Weight c = h.net_cost(net);
      if (c == 0) continue;
      for (const PartId q : candidates)
        if (!cache.net_touches(net, q))
          gain_to[static_cast<std::size_t>(q.v)] -= c;
    }
    const Weight wv = h.vertex_weight(v);
    const bool from_overweight = cache.part_weight(from) > max_pw;
    PartId best = kNoPart;
    Weight best_gain = 0;
    Weight best_dest_w = 0;
    for (const PartId q : candidates) {
      const Weight g = leave_gain + gain_to[static_cast<std::size_t>(q.v)];
      gain_to[static_cast<std::size_t>(q.v)] = 0;
      const Weight dest_w = cache.part_weight(q);
      if (dest_w + wv > max_pw) continue;
      const bool improves_balance = cache.part_weight(from) > dest_w + wv;
      // Same acceptance rule as the k-way refiner, with one extension:
      // an overweight source part may shed vertices at negative gain —
      // restoring Eq. 1 after a weight perturbation is the fast path's
      // first job, cut repair its second.
      if (!from_overweight && (g < 0 || (g == 0 && !improves_balance)))
        continue;
      if (best == kNoPart || g > best_gain ||
          (g == best_gain && dest_w < best_dest_w)) {
        best = q;
        best_gain = g;
        best_dest_w = dest_w;
      }
    }
    if (best == kNoPart) continue;
    cache.apply_move(v, best);
    ++out.moves;
    // The move changed gains in its net neighborhood: revisit it.
    for (const NetId net : h.incident_nets(v))
      for (const VertexId u : h.pins(net))
        if (u != v) push(u);
    push(v);
  }

  out.cut = cache.cut();
  std::copy(cache.parts().begin(), cache.parts().end(),
            out.partition.assignment.begin());
  out.imbalance = imbalance(h.vertex_weights(), out.partition);
  out.drift = static_cast<double>(out.cut - baseline_cut_) /
              static_cast<double>(std::max<Weight>(1, baseline_cut_));

  cache.validate(cfg.partition.check_level);
  if (check::paranoid(cfg.partition.check_level))
    HGR_ASSERT_MSG(out.cut == connectivity_cut(h, out.partition),
                   "incremental cut diverged from scratch recomputation");

  bool over = false;
  for (const PartId q : part_range(k))
    if (cache.part_weight(q) > max_pw) over = true;
  if (over) {
    out.reason = "imbalance";
  } else if (out.drift > cfg.partition.incremental_max_drift) {
    out.reason = "drift";
  } else {
    out.accepted = true;
    static obs::CachedCounter accepted("incremental.accepted");
    static obs::CachedCounter moves("incremental.moves");
    accepted += 1;
    moves += static_cast<std::uint64_t>(out.moves);
  }
  out.seconds = timer.seconds();
  return out;
}

}  // namespace hgr
