#include "core/callback_api.hpp"

#include "common/assert.hpp"
#include "hypergraph/builder.hpp"
#include "partition/partitioner.hpp"

namespace hgr {

Hypergraph build_from_queries(const ObjectQueries& queries) {
  HGR_ASSERT_MSG(queries.num_objects != nullptr, "num_objects is mandatory");
  HGR_ASSERT_MSG(queries.num_hyperedges != nullptr,
                 "num_hyperedges is mandatory");
  HGR_ASSERT_MSG(queries.hyperedge_objects != nullptr,
                 "hyperedge_objects is mandatory");

  const Index n = queries.num_objects();
  HypergraphBuilder builder(n);
  const Index num_edges = queries.num_hyperedges();
  for (Index e = 0; e < num_edges; ++e) {
    const std::vector<Index> pins = queries.hyperedge_objects(e);
    const Weight cost =
        queries.hyperedge_cost ? queries.hyperedge_cost(e) : 1;
    builder.add_net(pins, cost);
  }
  for (Index v = 0; v < n; ++v) {
    if (queries.object_weight)
      builder.set_vertex_weight(v, queries.object_weight(v));
    if (queries.object_size)
      builder.set_vertex_size(v, queries.object_size(v));
    if (queries.fixed_part) {
      const PartId f = queries.fixed_part(v);
      if (f != kNoPart) builder.set_fixed_part(v, f);
    }
  }
  return builder.finalize();
}

Partition partition_objects(const ObjectQueries& queries,
                            const PartitionConfig& cfg) {
  return partition_hypergraph(build_from_queries(queries), cfg);
}

RepartitionResult repartition_objects(
    const ObjectQueries& queries,
    const std::function<PartId(Index v)>& current_part,
    const RepartitionerConfig& cfg) {
  HGR_ASSERT_MSG(current_part != nullptr, "current_part is mandatory");
  const Hypergraph h = build_from_queries(queries);
  Partition old_p(cfg.partition.num_parts, h.num_vertices());
  for (Index v = 0; v < h.num_vertices(); ++v) {
    const PartId q = current_part(v);
    HGR_ASSERT_MSG(q.v >= 0 && q.v < old_p.k, "current_part out of range");
    old_p[VertexId{v}] = q;
  }
  return hypergraph_repartition(h, old_p, cfg);
}

}  // namespace hgr
