#include "core/repartitioner.hpp"

#include "common/assert.hpp"
#include "common/timer.hpp"
#include "core/repartition_model.hpp"
#include "graphpart/scratch_remap.hpp"
#include "partition/partitioner.hpp"

namespace hgr {

namespace {

RepartitionResult finish(const Hypergraph& h, const Partition& old_p,
                         Partition new_p, Weight alpha, double seconds) {
  RepartitionResult result;
  result.cost = evaluate_repartition(h, old_p, new_p, alpha);
  result.plan = extract_migration_plan(h.vertex_sizes(), old_p, new_p);
  result.partition = std::move(new_p);
  result.seconds = seconds;
  return result;
}

RepartitionResult finish(const Graph& g, const Partition& old_p,
                         Partition new_p, Weight alpha, double seconds) {
  RepartitionResult result;
  result.cost = evaluate_repartition(g, old_p, new_p, alpha);
  result.plan = extract_migration_plan(g.vertex_sizes(), old_p, new_p);
  result.partition = std::move(new_p);
  result.seconds = seconds;
  return result;
}

}  // namespace

RepartitionResult hypergraph_repartition(const Hypergraph& h,
                                         const Partition& old_p,
                                         const RepartitionerConfig& cfg) {
  HGR_ASSERT(old_p.k == cfg.partition.num_parts);
  WallTimer timer;
  const RepartitionModel model =
      build_repartition_model(h, old_p, cfg.alpha);
  const Partition augmented_p =
      partition_hypergraph(model.augmented, cfg.partition);
  Partition new_p = decode_augmented_partition(model, augmented_p);
  const double seconds = timer.seconds();

  // The model identity is exact; assert it on every production call.
  const RepartitionCost split =
      split_augmented_cut(model, augmented_p, old_p);
  RepartitionResult result =
      finish(h, old_p, std::move(new_p), cfg.alpha, seconds);
  HGR_ASSERT_MSG(split.comm_volume == result.cost.comm_volume &&
                     split.migration_volume == result.cost.migration_volume,
                 "augmented cut does not match measured cost");
  return result;
}

RepartitionResult hypergraph_scratch(const Hypergraph& h,
                                     const Partition& old_p,
                                     const RepartitionerConfig& cfg) {
  HGR_ASSERT(old_p.k == cfg.partition.num_parts);
  WallTimer timer;
  Partition new_p = hypergraph_scratch_remap(h, old_p, cfg.partition);
  return finish(h, old_p, std::move(new_p), cfg.alpha, timer.seconds());
}

RepartitionResult graph_repartition(const Graph& g, const Partition& old_p,
                                    const RepartitionerConfig& cfg) {
  HGR_ASSERT(old_p.k == cfg.partition.num_parts);
  WallTimer timer;
  AdaptiveRepartConfig acfg;
  acfg.base = cfg.partition;
  acfg.alpha = cfg.alpha;
  Partition new_p = adaptive_repartition(g, old_p, acfg);
  return finish(g, old_p, std::move(new_p), cfg.alpha, timer.seconds());
}

RepartitionResult graph_scratch(const Graph& g, const Partition& old_p,
                                const RepartitionerConfig& cfg) {
  HGR_ASSERT(old_p.k == cfg.partition.num_parts);
  WallTimer timer;
  Partition new_p = graph_scratch_remap(g, old_p, cfg.partition);
  return finish(g, old_p, std::move(new_p), cfg.alpha, timer.seconds());
}

std::string to_string(RepartAlgorithm algorithm) {
  switch (algorithm) {
    case RepartAlgorithm::kHypergraphRepart:
      return "hg-repart";
    case RepartAlgorithm::kGraphRepart:
      return "graph-repart";
    case RepartAlgorithm::kHypergraphScratch:
      return "hg-scratch";
    case RepartAlgorithm::kGraphScratch:
      return "graph-scratch";
  }
  return "unknown";
}

RepartitionResult run_repartition_algorithm(RepartAlgorithm algorithm,
                                            const Hypergraph& h,
                                            const Graph& g,
                                            const Partition& old_p,
                                            const RepartitionerConfig& cfg) {
  RepartitionResult result;
  switch (algorithm) {
    case RepartAlgorithm::kHypergraphRepart:
      result = hypergraph_repartition(h, old_p, cfg);
      break;
    case RepartAlgorithm::kHypergraphScratch:
      result = hypergraph_scratch(h, old_p, cfg);
      break;
    case RepartAlgorithm::kGraphRepart:
      result = graph_repartition(g, old_p, cfg);
      break;
    case RepartAlgorithm::kGraphScratch:
      result = graph_scratch(g, old_p, cfg);
      break;
  }
  // Re-evaluate the graph algorithms' costs on the hypergraph so every
  // algorithm reports the same communication-volume metric.
  if (algorithm == RepartAlgorithm::kGraphRepart ||
      algorithm == RepartAlgorithm::kGraphScratch) {
    result.cost =
        evaluate_repartition(h, old_p, result.partition, cfg.alpha);
  }
  return result;
}

}  // namespace hgr
