#include "core/repartitioner.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>

#include "common/assert.hpp"
#include "common/timer.hpp"
#include "core/incremental_repart.hpp"
#include "core/repartition_model.hpp"
#include "graphpart/scratch_remap.hpp"
#include "obs/critical_path.hpp"
#include "obs/events.hpp"
#include "obs/trace.hpp"
#include "parallel/par_partitioner.hpp"
#include "partition/partitioner.hpp"

namespace hgr {

namespace {

RepartitionResult finish(const Hypergraph& h, const Partition& old_p,
                         Partition new_p, Weight alpha, double seconds) {
  RepartitionResult result;
  result.cost = evaluate_repartition(h, old_p, new_p, alpha);
  result.plan = extract_migration_plan(h.vertex_sizes(), old_p, new_p);
  result.partition = std::move(new_p);
  result.seconds = seconds;
  return result;
}

RepartitionResult finish(const Graph& g, const Partition& old_p,
                         Partition new_p, Weight alpha, double seconds) {
  RepartitionResult result;
  result.cost = evaluate_repartition(g, old_p, new_p, alpha);
  result.plan = extract_migration_plan(g.vertex_sizes(), old_p, new_p);
  result.partition = std::move(new_p);
  result.seconds = seconds;
  return result;
}

}  // namespace

RepartitionResult hypergraph_repartition(const Hypergraph& h,
                                         const Partition& old_p,
                                         const RepartitionerConfig& cfg) {
  HGR_ASSERT(old_p.k == cfg.partition.num_parts);
  WallTimer timer;
  const RepartitionModel model =
      build_repartition_model(h, old_p, cfg.alpha);
  const Partition augmented_p =
      partition_hypergraph(model.augmented, cfg.partition);
  Partition new_p = decode_augmented_partition(model, augmented_p);
  const double seconds = timer.seconds();

  // The model identity is exact; assert it on every production call.
  const RepartitionCost split =
      split_augmented_cut(model, augmented_p, old_p);
  RepartitionResult result =
      finish(h, old_p, std::move(new_p), cfg.alpha, seconds);
  HGR_ASSERT_MSG(split.comm_volume == result.cost.comm_volume &&
                     split.migration_volume == result.cost.migration_volume,
                 "augmented cut does not match measured cost");
  return result;
}

RepartitionResult hypergraph_scratch(const Hypergraph& h,
                                     const Partition& old_p,
                                     const RepartitionerConfig& cfg) {
  HGR_ASSERT(old_p.k == cfg.partition.num_parts);
  WallTimer timer;
  Partition new_p = hypergraph_scratch_remap(h, old_p, cfg.partition);
  return finish(h, old_p, std::move(new_p), cfg.alpha, timer.seconds());
}

RepartitionResult graph_repartition(const Graph& g, const Partition& old_p,
                                    const RepartitionerConfig& cfg) {
  HGR_ASSERT(old_p.k == cfg.partition.num_parts);
  WallTimer timer;
  AdaptiveRepartConfig acfg;
  acfg.base = cfg.partition;
  acfg.alpha = cfg.alpha;
  Partition new_p = adaptive_repartition(g, old_p, acfg);
  return finish(g, old_p, std::move(new_p), cfg.alpha, timer.seconds());
}

RepartitionResult graph_scratch(const Graph& g, const Partition& old_p,
                                const RepartitionerConfig& cfg) {
  HGR_ASSERT(old_p.k == cfg.partition.num_parts);
  WallTimer timer;
  Partition new_p = graph_scratch_remap(g, old_p, cfg.partition);
  return finish(g, old_p, std::move(new_p), cfg.alpha, timer.seconds());
}

const char* to_string(RepartTier tier) {
  switch (tier) {
    case RepartTier::kStatic:
      return "static";
    case RepartTier::kFull:
      return "full";
    case RepartTier::kIncremental:
      return "incremental";
  }
  return "unknown";
}

std::string to_string(RepartAlgorithm algorithm) {
  switch (algorithm) {
    case RepartAlgorithm::kHypergraphRepart:
      return "hg-repart";
    case RepartAlgorithm::kGraphRepart:
      return "graph-repart";
    case RepartAlgorithm::kHypergraphScratch:
      return "hg-scratch";
    case RepartAlgorithm::kGraphScratch:
      return "graph-scratch";
  }
  return "unknown";
}

RepartitionResult run_repartition_algorithm(RepartAlgorithm algorithm,
                                            const Hypergraph& h,
                                            const Graph& g,
                                            const Partition& old_p,
                                            const RepartitionerConfig& cfg) {
  RepartitionResult result;
  switch (algorithm) {
    case RepartAlgorithm::kHypergraphRepart:
      result = hypergraph_repartition(h, old_p, cfg);
      break;
    case RepartAlgorithm::kHypergraphScratch:
      result = hypergraph_scratch(h, old_p, cfg);
      break;
    case RepartAlgorithm::kGraphRepart:
      result = graph_repartition(g, old_p, cfg);
      break;
    case RepartAlgorithm::kGraphScratch:
      result = graph_scratch(g, old_p, cfg);
      break;
  }
  // Re-evaluate the graph algorithms' costs on the hypergraph so every
  // algorithm reports the same communication-volume metric.
  if (algorithm == RepartAlgorithm::kGraphRepart ||
      algorithm == RepartAlgorithm::kGraphScratch) {
    result.cost =
        evaluate_repartition(h, old_p, result.partition, cfg.alpha);
  }
  return result;
}

namespace {

/// One attempt: the parallel runtime for the paper's method when
/// cfg.num_ranks > 0 (the path fault plans can perturb), the serial
/// dispatch otherwise. Throws whatever the attempt throws.
RepartitionResult attempt_repartition(RepartAlgorithm algorithm,
                                      const Hypergraph& h, const Graph& g,
                                      const Partition& old_p,
                                      const RepartitionerConfig& cfg) {
  if (cfg.num_ranks > 0 &&
      algorithm == RepartAlgorithm::kHypergraphRepart) {
    ParallelPartitionConfig pcfg;
    pcfg.num_ranks = cfg.num_ranks;
    pcfg.base = cfg.partition;
    pcfg.deadlock_timeout = cfg.deadlock_timeout;
    ParallelPartitionResult pr =
        parallel_hypergraph_repartition(h, old_p, cfg.alpha, pcfg);
    RepartitionResult result;
    result.cost = evaluate_repartition(h, old_p, pr.partition, cfg.alpha);
    result.plan =
        extract_migration_plan(h.vertex_sizes(), old_p, pr.partition);
    result.partition = std::move(pr.partition);
    result.seconds = pr.seconds;
    return result;
  }
  return run_repartition_algorithm(algorithm, h, g, old_p, cfg);
}

/// Serial tiers have no per-rank timeline, so the parallel runtime never
/// opens a span for them. Record the whole tier as a one-rank span instead:
/// the critical-path section stays populated (rank 0, zero wait) whichever
/// tier handled the epoch.
void record_serial_epoch_span(const char* phase, double seconds) {
  const std::uint64_t span = obs::begin_epoch_span();
  obs::record_rank_phase(span, 0, phase, seconds, 0.0);
  obs::end_epoch_span(span);
}

/// True when run_repartition_with_policy dispatches to the parallel
/// runtime, which records its own per-rank critical-path span.
bool uses_parallel_runtime(RepartAlgorithm algorithm,
                           const RepartitionerConfig& cfg) {
  return cfg.num_ranks > 0 &&
         algorithm == RepartAlgorithm::kHypergraphRepart;
}

/// The terminal fallback: keep the previous assignment. Zero migration by
/// construction; the cut is recomputed on the epoch hypergraph so the
/// record stays honest about what a stale partition costs.
RepartitionResult keep_old_partition(const Hypergraph& h,
                                     const Partition& old_p, Weight alpha) {
  RepartitionResult result;
  result.cost = evaluate_repartition(h, old_p, old_p, alpha);
  result.plan = extract_migration_plan(h.vertex_sizes(), old_p, old_p);
  result.partition = old_p;
  return result;
}

/// Exponential backoff before retry `attempt` (1-based). The exponent is
/// capped — 2^30 backoff units is already beyond any plausible schedule —
/// and the shift is computed in int64_t, so max_retries >= 31 saturates
/// instead of hitting signed-shift UB. With a stop token the wait rides the
/// token's condition variable; returns true when stop was requested during
/// (or before) the wait.
bool backoff_before_retry(const RepartitionerConfig& cfg, int attempt) {
  if (cfg.retry_backoff_seconds <= 0.0)
    return cfg.stop != nullptr && cfg.stop->stop_requested();
  const int exponent = std::min(attempt - 1, 30);
  const double delay = cfg.retry_backoff_seconds *
                       static_cast<double>(std::int64_t{1} << exponent);
  if (cfg.stop != nullptr) return cfg.stop->wait_for(delay);
  std::this_thread::sleep_for(std::chrono::duration<double>(delay));
  return false;
}

}  // namespace

GuardedRepartitionResult run_repartition_with_policy(
    RepartAlgorithm algorithm, const Hypergraph& h, const Graph& g,
    const Partition& old_p, const RepartitionerConfig& cfg) {
  GuardedRepartitionResult out;
  const int attempts = std::max(0, cfg.max_retries) + 1;
  static obs::CachedCounter retries_counter("epoch.retries");
  static obs::CachedCounter failures_counter("epoch.repart_failures");
  static obs::CachedCounter over_budget_counter("epoch.over_budget");
  int performed = 0;        // attempts actually run
  bool stopped = false;     // cfg.stop fired: skip straight to keep-old
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (cfg.stop != nullptr && cfg.stop->stop_requested()) {
      out.error = "repartition stopped before attempt";
      stopped = true;
      break;
    }
    if (attempt > 0) {
      if (backoff_before_retry(cfg, attempt)) {
        // The owner's stop flag fired mid-backoff: abandon the retry and
        // degrade to the cheap fallback so shutdown never waits out a
        // backoff schedule.
        out.error = "repartition stopped during retry backoff";
        stopped = true;
        break;
      }
      retries_counter += 1;
    }
    ++performed;
    try {
      RepartitionResult r = attempt_repartition(algorithm, h, g, old_p, cfg);
      if (cfg.epoch_time_budget > 0.0 && r.seconds > cfg.epoch_time_budget) {
        // Over budget is non-retryable: the attempt *completed*, it was
        // just too slow, and rerunning the same full-cost computation
        // would burn another budget multiple while the epoch is already
        // late. Counted separately from thrown failures.
        out.error = RepartitionOverBudget(r.seconds, cfg.epoch_time_budget)
                        .what();
        over_budget_counter += 1;
        if (obs::events_enabled())
          obs::emit_instant("epoch.over_budget", "epoch");
        break;
      }
      out.result = std::move(r);
      out.retries = attempt;
      return out;
    } catch (const std::exception& e) {
      // Retryable by policy: a misbehaving rank (CommAborted /
      // FaultInjected), a hung collective (CommDeadlock) — anything
      // short of killing the epoch loop.
      out.error = e.what();
      failures_counter += 1;
      // Mark the failure on the timeline so the aborted attempt's tail is
      // attributable in --chrome-trace output (the export also closes any
      // spans the dying attempt left open).
      if (obs::events_enabled())
        obs::emit_instant("epoch.repart_failure", "epoch");
    }
  }

  // Attempts exhausted, over budget, or stopped: degrade instead of
  // aborting the run. The fallback never touches the comm runtime, so a
  // poisoned fault plan or wedged parallel path cannot take it down too.
  out.degraded = true;
  out.retries = std::max(0, performed - 1);
  obs::counter("epoch.degraded") += 1;
  if (obs::events_enabled()) obs::emit_instant("epoch.degraded", "epoch");
  WallTimer timer;
  if (cfg.fallback == EpochFallback::kScratch && !stopped) {
    try {
      RepartitionerConfig serial = cfg;
      serial.num_ranks = 0;
      out.result = hypergraph_scratch(h, old_p, serial);
      out.result.seconds = timer.seconds();
      return out;
    } catch (const std::exception& e) {
      out.error = e.what();  // fall through to keep-old: the last resort
    }
  }
  out.result = keep_old_partition(h, old_p, cfg.alpha);
  out.result.seconds = timer.seconds();
  return out;
}

GuardedRepartitionResult run_tiered_repartition(
    RepartAlgorithm algorithm, const Hypergraph& h, const Graph& g,
    const Partition& old_p, const RepartitionerConfig& cfg,
    IncrementalRepartitioner& inc, const EpochDelta& delta) {
  // The fast path repairs a hypergraph partition through the gain cache;
  // graph-family algorithms keep their own full pipelines.
  const bool hypergraph_family =
      algorithm == RepartAlgorithm::kHypergraphRepart ||
      algorithm == RepartAlgorithm::kHypergraphScratch;
  if (cfg.partition.incremental != IncrementalMode::kOff &&
      hypergraph_family && old_p.k == cfg.partition.num_parts) {
    IncrementalOutcome fast = inc.try_epoch(h, old_p, delta, cfg);
    if (fast.accepted) {
      GuardedRepartitionResult out;
      out.tier = RepartTier::kIncremental;
      out.result.cost =
          evaluate_repartition(h, old_p, fast.partition, cfg.alpha);
      out.result.plan =
          extract_migration_plan(h.vertex_sizes(), old_p, fast.partition);
      out.result.partition = std::move(fast.partition);
      out.result.seconds = fast.seconds;
      obs::counter("epoch.tier_incremental") += 1;
      obs::histogram("epoch.incremental_ns")
          .record(static_cast<std::int64_t>(fast.seconds * 1e9));
      record_serial_epoch_span("incremental", fast.seconds);
      return out;
    }
    GuardedRepartitionResult out =
        run_repartition_with_policy(algorithm, h, g, old_p, cfg);
    out.tier = RepartTier::kFull;
    out.escalated = fast.attempted;
    out.tier_reason = fast.reason;
    if (fast.attempted) obs::counter("epoch.escalations") += 1;
    obs::counter("epoch.tier_full") += 1;
    obs::histogram("epoch.full_ns")
        .record(static_cast<std::int64_t>(out.result.seconds * 1e9));
    if (!uses_parallel_runtime(algorithm, cfg))
      record_serial_epoch_span("full", out.result.seconds);
    inc.note_full(out.result.cost.comm_volume);
    return out;
  }
  GuardedRepartitionResult out =
      run_repartition_with_policy(algorithm, h, g, old_p, cfg);
  obs::counter("epoch.tier_full") += 1;
  obs::histogram("epoch.full_ns")
      .record(static_cast<std::int64_t>(out.result.seconds * 1e9));
  if (!uses_parallel_runtime(algorithm, cfg))
    record_serial_epoch_span("full", out.result.seconds);
  inc.note_full(out.result.cost.comm_volume);
  return out;
}

}  // namespace hgr
