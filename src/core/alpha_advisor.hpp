// Alpha estimation — the paper's Section 6: "Our approach uses a single
// user-defined parameter alpha to trade between communication cost and
// migration cost. ... The best choice of alpha will depend on the
// application, and can be estimated. Reasonable values are in the range
// 1 - 1000."
//
// alpha is the number of iterations the application will run before the
// next rebalance. Applications that do not know it a priori can feed the
// advisor their epoch history (iterations actually executed, measured
// per-iteration communication and migration volumes) and get back a
// clamped prediction for the next epoch, plus a retrospective report of
// what each candidate alpha would have cost.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace hgr {

struct EpochObservation {
  Weight iterations = 1;        // how long the epoch actually ran
  Weight comm_volume = 0;       // per-iteration communication volume
  Weight migration_volume = 0;  // data moved entering this epoch
};

class AlphaAdvisor {
 public:
  /// smoothing in (0, 1]: weight of the newest observation in the
  /// exponential moving average of epoch lengths (default 0.5).
  explicit AlphaAdvisor(double smoothing = 0.5, Weight min_alpha = 1,
                        Weight max_alpha = 1000);

  void record(const EpochObservation& epoch);

  /// Predicted iterations of the next epoch: the smoothed history, clamped
  /// to [min_alpha, max_alpha] (the paper's "reasonable range"). Returns
  /// the midpoint heuristic (min_alpha) before any history exists.
  Weight recommend() const;

  Index num_observations() const {
    return static_cast<Index>(history_.size());
  }
  const std::vector<EpochObservation>& history() const { return history_; }

  /// Retrospective: the total cost  alpha * comm + mig  the recorded
  /// history would have accumulated; lets applications compare candidate
  /// alphas against what actually happened.
  Weight replay_total_cost(Weight alpha) const;

 private:
  double smoothing_;
  Weight min_alpha_;
  Weight max_alpha_;
  double ema_ = 0.0;
  bool has_ema_ = false;
  std::vector<EpochObservation> history_;
};

}  // namespace hgr
