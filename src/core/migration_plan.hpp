// Decoding a repartitioning result into an executable data-migration plan:
// which vertex moves where, how much data each processor pair exchanges.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "metrics/partition.hpp"

namespace hgr {

struct MigrationPlan {
  struct Move {
    VertexId vertex;
    PartId from;
    PartId to;
    Weight size;
  };

  std::vector<Move> moves;
  Weight total_volume = 0;
  Index k = 0;

  /// volume[i*k + j] = bytes moving from part i to part j.
  std::vector<Weight> volume_matrix;

  Weight volume_between(PartId from, PartId to) const {
    return volume_matrix[static_cast<std::size_t>(from.v) *
                             static_cast<std::size_t>(k) +
                         static_cast<std::size_t>(to.v)];
  }

  /// Largest send+receive volume over all parts: the migration bottleneck.
  Weight max_part_traffic() const;

  std::string summary() const;
};

/// Diff two assignments into a plan. vertex_sizes supplies per-vertex data
/// sizes.
MigrationPlan extract_migration_plan(IdSpan<VertexId, const Weight> vertex_sizes,
                                     const Partition& old_p,
                                     const Partition& new_p);

}  // namespace hgr
