// High-level repartitioning API: the library's headline entry points.
//
// hypergraph_repartition() is the paper's new method ("Zoltan-repart"):
// build the augmented repartitioning hypergraph and solve it with the
// fixed-vertex multilevel partitioner, directly minimizing
// alpha * communication + migration.
//
// The other three paper algorithms (hypergraph scratch, graph adaptive
// repartitioning, graph scratch) are exposed behind the same signature so
// the experiment harness and applications can swap strategies.
#pragma once

#include <string>

#include "core/migration_plan.hpp"
#include "graphpart/adaptive_repart.hpp"
#include "hypergraph/graph.hpp"
#include "hypergraph/hypergraph.hpp"
#include "metrics/cost_model.hpp"
#include "metrics/partition.hpp"
#include "partition/config.hpp"

namespace hgr {

struct RepartitionerConfig {
  PartitionConfig partition;
  /// Iterations per epoch: the communication-vs-migration trade-off knob.
  Weight alpha = 100;
};

struct RepartitionResult {
  Partition partition;
  MigrationPlan plan;
  RepartitionCost cost;   // measured on the epoch hypergraph/graph
  double seconds = 0.0;   // repartitioning wall time (Figures 7-8)
};

/// The paper's method: repartitioning via hypergraph partitioning with
/// fixed vertices on the augmented model ("Zoltan-repart").
RepartitionResult hypergraph_repartition(const Hypergraph& h,
                                         const Partition& old_p,
                                         const RepartitionerConfig& cfg);

/// Hypergraph partitioning from scratch + remap ("Zoltan-scratch").
RepartitionResult hypergraph_scratch(const Hypergraph& h,
                                     const Partition& old_p,
                                     const RepartitionerConfig& cfg);

/// Graph adaptive repartitioning ("ParMETIS-repart" / AdaptiveRepart).
RepartitionResult graph_repartition(const Graph& g, const Partition& old_p,
                                    const RepartitionerConfig& cfg);

/// Graph partitioning from scratch + remap ("ParMETIS-scratch" / Partkway).
RepartitionResult graph_scratch(const Graph& g, const Partition& old_p,
                                const RepartitionerConfig& cfg);

/// The four algorithms compared in the paper's Section 5.
enum class RepartAlgorithm {
  kHypergraphRepart,   // Zoltan-repart   (this paper)
  kGraphRepart,        // ParMETIS-repart (AdaptiveRepart analog)
  kHypergraphScratch,  // Zoltan-scratch
  kGraphScratch,       // ParMETIS-scratch (Partkway analog)
};

std::string to_string(RepartAlgorithm algorithm);

/// Dispatch over both representations of the same epoch problem: the
/// hypergraph algorithms consume h, the graph algorithms g. Costs are
/// always evaluated on h so the four bars are directly comparable (on the
/// symmetric 2-pin instances of the evaluation, connectivity-1 cut and
/// edge cut agree).
RepartitionResult run_repartition_algorithm(RepartAlgorithm algorithm,
                                            const Hypergraph& h,
                                            const Graph& g,
                                            const Partition& old_p,
                                            const RepartitionerConfig& cfg);

}  // namespace hgr
