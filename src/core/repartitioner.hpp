// High-level repartitioning API: the library's headline entry points.
//
// hypergraph_repartition() is the paper's new method ("Zoltan-repart"):
// build the augmented repartitioning hypergraph and solve it with the
// fixed-vertex multilevel partitioner, directly minimizing
// alpha * communication + migration.
//
// The other three paper algorithms (hypergraph scratch, graph adaptive
// repartitioning, graph scratch) are exposed behind the same signature so
// the experiment harness and applications can swap strategies.
#pragma once

#include <stdexcept>
#include <string>

#include "common/stop_token.hpp"
#include "core/migration_plan.hpp"
#include "graphpart/adaptive_repart.hpp"
#include "hypergraph/graph.hpp"
#include "hypergraph/hypergraph.hpp"
#include "metrics/cost_model.hpp"
#include "metrics/partition.hpp"
#include "partition/config.hpp"

namespace hgr {

/// What run_repartition_with_policy falls back to once retries are
/// exhausted (docs/ROBUSTNESS.md). A stale partition beats a dead run: the
/// paper's premise is an application that keeps computing across epochs.
enum class EpochFallback {
  /// Keep the previous assignment: zero migration, cut recomputed on the
  /// epoch hypergraph so reported costs stay honest.
  kKeepOld,
  /// Serial scratch partition + remap — never touches the comm runtime.
  /// If the scratch attempt itself fails, degrades further to kKeepOld.
  kScratch,
};

struct RepartitionerConfig {
  PartitionConfig partition;
  /// Iterations per epoch: the communication-vs-migration trade-off knob.
  Weight alpha = 100;

  // --- parallel execution + graceful degradation (docs/ROBUSTNESS.md) ---

  /// >0: kHypergraphRepart repartitions run on the in-process parallel
  /// runtime with this many ranks (the surface fault plans perturb);
  /// 0 (default) keeps every algorithm serial.
  int num_ranks = 0;
  /// Watchdog timeout for the parallel path (seconds; 0 disables). An
  /// injected stall only surfaces as CommDeadlock while this is nonzero.
  double deadlock_timeout = 30.0;
  /// Failed repartition attempts are retried up to this many times before
  /// the epoch degrades to `fallback`.
  int max_retries = 1;
  /// Wait retry_backoff_seconds * 2^r before retry r (0 = no backoff).
  /// The exponent is capped and the shift computed in 64 bits, so absurd
  /// max_retries values saturate instead of hitting shift UB.
  double retry_backoff_seconds = 0.0;
  /// Per-attempt wall budget (seconds; 0 = unlimited). An attempt that
  /// completes but overruns the budget is NOT retried — rerunning the same
  /// full-cost attempt would burn a multiple of the budget while the epoch
  /// is already late. The policy degrades to `fallback` immediately and
  /// counts the event under epoch.over_budget.
  double epoch_time_budget = 0.0;
  EpochFallback fallback = EpochFallback::kKeepOld;
  /// Optional cooperative cancellation (common/stop_token.hpp). When set,
  /// retry backoffs wait on the token (interruptible) instead of a plain
  /// sleep, and a requested stop degrades the epoch straight to keep-old —
  /// hgr_serve points this at its shutdown flag so stopping the daemon
  /// never blocks on a backoff in flight. Not owned; may be null.
  StopToken* stop = nullptr;
};

struct RepartitionResult {
  Partition partition;
  MigrationPlan plan;
  RepartitionCost cost;   // measured on the epoch hypergraph/graph
  double seconds = 0.0;   // repartitioning wall time (Figures 7-8)
};

/// The paper's method: repartitioning via hypergraph partitioning with
/// fixed vertices on the augmented model ("Zoltan-repart").
RepartitionResult hypergraph_repartition(const Hypergraph& h,
                                         const Partition& old_p,
                                         const RepartitionerConfig& cfg);

/// Hypergraph partitioning from scratch + remap ("Zoltan-scratch").
RepartitionResult hypergraph_scratch(const Hypergraph& h,
                                     const Partition& old_p,
                                     const RepartitionerConfig& cfg);

/// Graph adaptive repartitioning ("ParMETIS-repart" / AdaptiveRepart).
RepartitionResult graph_repartition(const Graph& g, const Partition& old_p,
                                    const RepartitionerConfig& cfg);

/// Graph partitioning from scratch + remap ("ParMETIS-scratch" / Partkway).
RepartitionResult graph_scratch(const Graph& g, const Partition& old_p,
                                const RepartitionerConfig& cfg);

/// The four algorithms compared in the paper's Section 5.
enum class RepartAlgorithm {
  kHypergraphRepart,   // Zoltan-repart   (this paper)
  kGraphRepart,        // ParMETIS-repart (AdaptiveRepart analog)
  kHypergraphScratch,  // Zoltan-scratch
  kGraphScratch,       // ParMETIS-scratch (Partkway analog)
};

std::string to_string(RepartAlgorithm algorithm);

/// Dispatch over both representations of the same epoch problem: the
/// hypergraph algorithms consume h, the graph algorithms g. Costs are
/// always evaluated on h so the four bars are directly comparable (on the
/// symmetric 2-pin instances of the evaluation, connectivity-1 cut and
/// edge cut agree).
RepartitionResult run_repartition_algorithm(RepartAlgorithm algorithm,
                                            const Hypergraph& h,
                                            const Graph& g,
                                            const Partition& old_p,
                                            const RepartitionerConfig& cfg);

/// An attempt that completed over cfg.epoch_time_budget. The policy loop
/// no longer throws this across attempts (over-budget is non-retryable);
/// it is kept as the canonical message formatter for that outcome and for
/// callers that probe errors with catch clauses.
class RepartitionOverBudget : public std::runtime_error {
 public:
  RepartitionOverBudget(double seconds, double budget)
      : std::runtime_error("repartition attempt took " +
                           std::to_string(seconds) +
                           "s, over the per-epoch budget of " +
                           std::to_string(budget) + "s") {}
};

/// Which tier of the two-tier epoch system produced a partition
/// (docs/INCREMENTAL.md). kStatic is the bootstrap epoch; kFull is a full
/// repartition (V-cycle / scratch / graph algorithm); kIncremental is the
/// O(delta) gain-cache fast path.
enum class RepartTier { kStatic, kFull, kIncremental };

const char* to_string(RepartTier tier);

/// A repartitioning decision plus how it was reached: how many failed
/// attempts preceded it and whether it came from the degradation fallback
/// instead of the requested algorithm.
struct GuardedRepartitionResult {
  RepartitionResult result;
  Index retries = 0;      // failed attempts before `result`
  bool degraded = false;  // true: `result` is the fallback's, not the
                          // algorithm's
  std::string error;      // what() of the last failure ("" when clean)
  RepartTier tier = RepartTier::kFull;
  /// True when the incremental fast path was attempted (moves applied) but
  /// abandoned for drift/imbalance, falling through to the full tier.
  bool escalated = false;
  /// Why the fast path was not the final answer ("" when it was, or when
  /// incremental routing was off).
  std::string tier_reason;
};

/// run_repartition_algorithm wrapped in the graceful-degradation policy:
/// attempts (parallel when cfg.num_ranks > 0 and the algorithm is
/// kHypergraphRepart) are retried with exponential backoff on any thrown
/// failure (CommAborted, CommDeadlock, FaultInjected, ...); once
/// cfg.max_retries are exhausted the epoch degrades to cfg.fallback
/// instead of killing the run. An attempt that completes over
/// cfg.epoch_time_budget degrades immediately without retry, and a
/// cfg.stop request interrupts backoff waits and skips further attempts.
/// Bumps the epoch.repart_failures / epoch.retries / epoch.over_budget /
/// epoch.degraded counters. See docs/ROBUSTNESS.md.
GuardedRepartitionResult run_repartition_with_policy(
    RepartAlgorithm algorithm, const Hypergraph& h, const Graph& g,
    const Partition& old_p, const RepartitionerConfig& cfg);

class IncrementalRepartitioner;
struct EpochDelta;

/// Two-tier dispatch (docs/INCREMENTAL.md): when
/// cfg.partition.incremental allows it and `inc` accepts the epoch, the
/// O(delta) fast path answers; otherwise the call falls through to
/// run_repartition_with_policy and the full result refreshes the drift
/// baseline. Bumps the epoch.tier_* / epoch.escalations counters.
GuardedRepartitionResult run_tiered_repartition(
    RepartAlgorithm algorithm, const Hypergraph& h, const Graph& g,
    const Partition& old_p, const RepartitionerConfig& cfg,
    IncrementalRepartitioner& inc, const EpochDelta& delta);

}  // namespace hgr
