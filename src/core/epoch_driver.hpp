// Epoch driver: runs an adaptive computation's load-balancing loop.
//
// The paper's execution model (Section 3): the application computes in
// *epochs*; epoch j runs alpha_j iterations on hypergraph H^j, then the
// load balancer repartitions for epoch j+1 and data migrates. The driver
// reproduces this loop against a pluggable dynamic-data scenario and one of
// the four repartitioning algorithms, recording the per-epoch
// communication volume, migration volume, imbalance and repartitioning
// time that the paper's figures aggregate.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/repartitioner.hpp"
#include "hypergraph/graph.hpp"
#include "metrics/partition.hpp"

namespace hgr {

/// One epoch's problem instance, in epoch-local (compact) vertex ids.
struct EpochProblem {
  Graph graph;
  std::vector<Index> to_base;   // epoch id -> scenario base id
  Partition old_partition;      // previous assignment mapped to epoch ids
  bool first = false;           // epoch 1: no old assignment, partition
                                // statically
};

/// A source of dynamically changing epochs. Implementations live in
/// workload/ (structural perturbation, simulated AMR). Protocol:
/// next_epoch(), then record_partition() with the assignment chosen for
/// that epoch, then next_epoch() again, ...
class EpochScenario {
 public:
  virtual ~EpochScenario() = default;
  virtual EpochProblem next_epoch() = 0;
  virtual void record_partition(const Partition& p) = 0;
};

struct EpochRecord {
  Index epoch = 0;
  RepartitionCost cost;
  double repart_seconds = 0.0;
  double imbalance = 0.0;
  Index num_vertices = 0;
  Index num_migrated = 0;
  /// Wall seconds this epoch added to the coarsen/initial/refine phase
  /// nodes of the global trace (phase-tree deltas; 0 for algorithms that
  /// do not open those scopes). In the parallel path, scopes merge across
  /// ranks, so these are cpu-seconds (sum over ranks).
  double coarsen_seconds = 0.0;
  double initial_seconds = 0.0;
  double refine_seconds = 0.0;
  /// True for the static bootstrap epoch (no previous assignment). The
  /// summary means filter on this flag, not on the epoch number, so
  /// degraded or restarted sequences don't leak the bootstrap into the
  /// paper-figure averages.
  bool is_static = false;
  /// True when the repartition failed (exception or over-budget) through
  /// all retries and the epoch fell back per RepartitionerConfig::fallback
  /// (old partition kept, or serial scratch). See docs/ROBUSTNESS.md.
  bool degraded = false;
  /// Failed repartition attempts before this epoch's partition was chosen.
  Index retries = 0;
  /// Which tier produced the partition: the static bootstrap, a full
  /// repartition, or the O(delta) incremental fast path
  /// (docs/INCREMENTAL.md).
  RepartTier tier = RepartTier::kFull;
  /// True when the fast path was attempted but abandoned (drift or
  /// residual imbalance) and the epoch escalated to the full tier.
  bool escalated = false;
  /// Critical-path attribution for this epoch's repartition span: the rank
  /// whose compute bounded the epoch (-1 when no span was recorded, e.g.
  /// the static bootstrap) and the fraction of that rank's span spent
  /// blocked in the comm layer. See src/obs/critical_path.hpp.
  int critical_rank = -1;
  double wait_frac = 0.0;
};

struct EpochRunSummary {
  std::vector<EpochRecord> epochs;

  /// Averages over repartitioning epochs (is_static == false, where the
  /// paper's figures live; the static bootstrap is excluded). Degraded
  /// epochs stay included: a kept-old partition's cut is a real cost the
  /// run paid.
  double mean_comm_volume() const;
  double mean_migration_volume() const;
  double mean_normalized_total_cost() const;
  double mean_repart_seconds() const;
};

/// Run `num_epochs` epochs of `scenario` using `algorithm`.
EpochRunSummary run_epochs(EpochScenario& scenario,
                           RepartAlgorithm algorithm,
                           const RepartitionerConfig& cfg, Index num_epochs);

/// One row of the epoch time-series export: an EpochRecord tagged with the
/// run configuration it came from, so sweeps concatenate into one table.
struct EpochSeriesRow {
  std::string dataset;
  std::string perturb;
  std::string algorithm;
  Index k = 0;
  Weight alpha = 0;
  Index trial = 0;
  EpochRecord record;
};

/// Structured per-epoch time series (the paper's Figures 2-6 x-axis is the
/// epoch number; this is that trajectory in machine-readable form).
/// Dumped as CSV by `hgr_cli --epoch-csv=FILE` and the fig benches.
struct EpochSeries {
  std::vector<EpochSeriesRow> rows;

  /// Append every epoch of `summary` tagged with the given run labels.
  void append(std::string dataset, std::string perturb, std::string algorithm,
              Index k, Weight alpha, Index trial,
              const EpochRunSummary& summary);

  static std::string csv_header();
  std::string to_csv() const;  // header + one line per row
  bool write_csv(const std::string& path) const;
};

}  // namespace hgr
