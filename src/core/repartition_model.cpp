#include "core/repartition_model.hpp"

#include <vector>

#include "common/assert.hpp"
#include "common/csr_utils.hpp"
#include "metrics/cut.hpp"
#include "metrics/migration.hpp"

namespace hgr {

RepartitionModel build_repartition_model(const Hypergraph& h,
                                         const Partition& old_p,
                                         Weight alpha) {
  HGR_ASSERT(alpha >= 1);
  HGR_ASSERT(old_p.num_vertices() == h.num_vertices());
  old_p.validate();

  RepartitionModel model;
  model.num_real_vertices = h.num_vertices();
  model.num_comm_nets = h.num_nets();
  model.k = old_p.k;
  model.alpha = alpha;

  const Index n = h.num_vertices();
  const Index total_vertices = n + old_p.k;

  // Vertices: real ones keep weight/size; partition vertices are weightless
  // (they carry no computation and never migrate — they *are* the parts).
  std::vector<Weight> weights(static_cast<std::size_t>(total_vertices), 0);
  std::vector<Weight> sizes(static_cast<std::size_t>(total_vertices), 0);
  std::vector<PartId> fixed(static_cast<std::size_t>(total_vertices), kNoPart);
  for (const VertexId v : h.vertices()) {
    weights[static_cast<std::size_t>(v.v)] = h.vertex_weight(v);
    sizes[static_cast<std::size_t>(v.v)] = h.vertex_size(v);
    fixed[static_cast<std::size_t>(v.v)] = h.fixed_part(v);  // preserve any
  }
  for (const PartId i : old_p.parts())
    fixed[static_cast<std::size_t>(n + i.v)] = i;

  // Nets: communication nets first (alpha-scaled costs), then one 2-pin
  // migration net per real vertex.
  std::vector<Index> counts;
  std::vector<Weight> costs;
  counts.reserve(static_cast<std::size_t>(h.num_nets() + n));
  costs.reserve(counts.capacity());
  for (const NetId net : h.nets()) {
    counts.push_back(h.net_size(net));
    costs.push_back(h.net_cost(net) * alpha);
  }
  for (const VertexId v : h.vertices()) {
    counts.push_back(2);
    costs.push_back(h.vertex_size(v));
  }

  std::vector<Index> offsets = counts_to_offsets(std::move(counts));
  std::vector<VertexId> pins(static_cast<std::size_t>(offsets.back()));
  Index cursor = 0;
  for (const NetId net : h.nets())
    for (const VertexId v : h.pins(net))
      pins[static_cast<std::size_t>(cursor++)] = v;
  for (const VertexId v : h.vertices()) {
    pins[static_cast<std::size_t>(cursor++)] = v;
    pins[static_cast<std::size_t>(cursor++)] = VertexId{n + old_p[v].v};
  }
  HGR_ASSERT(cursor == offsets.back());

  model.augmented =
      Hypergraph(std::move(offsets), std::move(pins), std::move(weights),
                 std::move(sizes), std::move(costs), std::move(fixed));
  return model;
}

Partition decode_augmented_partition(const RepartitionModel& model,
                                     const Partition& augmented_p) {
  HGR_ASSERT(augmented_p.num_vertices() ==
             model.num_real_vertices + model.k);
  for (const PartId i : part_range(model.k))
    HGR_ASSERT_MSG(augmented_p[model.partition_vertex(i)] == i,
                   "partition vertex escaped its fixed part");
  Partition real(augmented_p.k, model.num_real_vertices);
  for (const VertexId v : real.vertices()) real[v] = augmented_p[v];
  return real;
}

RepartitionCost split_augmented_cut(const RepartitionModel& model,
                                    const Partition& augmented_p,
                                    const Partition& old_p) {
  const Hypergraph& aug = model.augmented;
  const Weight comm_scaled =
      connectivity_cut_range(aug, augmented_p, 0, model.num_comm_nets);
  const Weight mig = connectivity_cut_range(
      aug, augmented_p, model.num_comm_nets, aug.num_nets());

  HGR_ASSERT_MSG(comm_scaled % model.alpha == 0,
                 "scaled communication cut must be divisible by alpha");
  RepartitionCost cost;
  cost.alpha = model.alpha;
  cost.comm_volume = comm_scaled / model.alpha;
  cost.migration_volume = mig;

  // Cross-check the model identity against independently computed volumes.
  const Partition real = decode_augmented_partition(model, augmented_p);
  const Weight mig_direct = migration_volume(
      aug.vertex_sizes().first(model.num_real_vertices), old_p, real);
  HGR_ASSERT_MSG(mig == mig_direct,
                 "migration-net cut disagrees with direct migration volume");
  return cost;
}

}  // namespace hgr
