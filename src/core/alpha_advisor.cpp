#include "core/alpha_advisor.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace hgr {

AlphaAdvisor::AlphaAdvisor(double smoothing, Weight min_alpha,
                           Weight max_alpha)
    : smoothing_(smoothing), min_alpha_(min_alpha), max_alpha_(max_alpha) {
  HGR_ASSERT(smoothing > 0.0 && smoothing <= 1.0);
  HGR_ASSERT(min_alpha >= 1 && max_alpha >= min_alpha);
}

void AlphaAdvisor::record(const EpochObservation& epoch) {
  HGR_ASSERT(epoch.iterations >= 1);
  if (has_ema_) {
    ema_ = smoothing_ * static_cast<double>(epoch.iterations) +
           (1.0 - smoothing_) * ema_;
  } else {
    ema_ = static_cast<double>(epoch.iterations);
    has_ema_ = true;
  }
  history_.push_back(epoch);
}

Weight AlphaAdvisor::recommend() const {
  if (!has_ema_) return min_alpha_;
  const auto predicted = static_cast<Weight>(ema_ + 0.5);
  return std::clamp(predicted, min_alpha_, max_alpha_);
}

Weight AlphaAdvisor::replay_total_cost(Weight alpha) const {
  Weight total = 0;
  for (const EpochObservation& e : history_)
    total += alpha * e.comm_volume + e.migration_volume;
  return total;
}

}  // namespace hgr
