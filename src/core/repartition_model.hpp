// The repartitioning hypergraph model (paper Section 3) — the primary
// contribution of the reproduced paper.
//
// Given the epoch hypergraph H^j, the previous assignment, and alpha (the
// number of iterations the next epoch will run), build the augmented
// hypergraph H-bar^j:
//   - every communication net of H^j keeps its pins; its cost is scaled
//     by alpha;
//   - k new zero-weight *partition vertices* u_0..u_{k-1} are appended,
//     u_i fixed to part i;
//   - for every vertex v a 2-pin *migration net* {v, u_oldpart(v)} with
//     cost = vertex size of v is appended.
//
// Partitioning H-bar with fixed vertices then minimizes exactly
//   alpha * (communication volume) + (migration volume),
// because a moved vertex cuts its migration net (connectivity 2, cost =
// its data size) while a stationary one does not.
#pragma once

#include "hypergraph/hypergraph.hpp"
#include "metrics/cost_model.hpp"
#include "metrics/partition.hpp"

namespace hgr {

struct RepartitionModel {
  Hypergraph augmented;      // H-bar^j with fixed partition vertices
  Index num_real_vertices = 0;  // |V^j|; partition vertex u_i has id |V^j|+i
  Index num_comm_nets = 0;   // communication nets come first in net order
  Index k = 0;
  Weight alpha = 1;

  VertexId partition_vertex(PartId i) const {
    return VertexId{num_real_vertices + i.v};
  }
};

/// Build H-bar^j from the epoch hypergraph and the previous assignment.
/// old_p must cover every vertex of h (new vertices carry the part where
/// they were created, per the paper's Figure 1).
RepartitionModel build_repartition_model(const Hypergraph& h,
                                         const Partition& old_p, Weight alpha);

/// Decode a partition of the augmented hypergraph back to the real
/// vertices. Validates that every partition vertex stayed fixed.
Partition decode_augmented_partition(const RepartitionModel& model,
                                     const Partition& augmented_p);

/// Split the augmented cut into its communication and migration parts and
/// check the model identity:
///   cut(H-bar, P) == alpha * comm_volume + migration_volume.
/// Returns the cost; aborts if the identity fails (it is exact, not an
/// approximation).
RepartitionCost split_augmented_cut(const RepartitionModel& model,
                                    const Partition& augmented_p,
                                    const Partition& old_p);

}  // namespace hgr
