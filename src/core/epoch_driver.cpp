#include "core/epoch_driver.hpp"

#include "check/validate.hpp"
#include "common/assert.hpp"
#include "common/timer.hpp"
#include "graphpart/gpartitioner.hpp"
#include "hypergraph/convert.hpp"
#include "metrics/balance.hpp"
#include "metrics/cut.hpp"
#include "metrics/migration.hpp"
#include "obs/trace.hpp"
#include "partition/partitioner.hpp"

namespace hgr {

namespace {

double mean_over_repart_epochs(const std::vector<EpochRecord>& records,
                               double (*value)(const EpochRecord&)) {
  double sum = 0.0;
  Index count = 0;
  for (const EpochRecord& r : records) {
    if (r.epoch < 2) continue;
    sum += value(r);
    ++count;
  }
  return count == 0 ? 0.0 : sum / count;
}

}  // namespace

double EpochRunSummary::mean_comm_volume() const {
  return mean_over_repart_epochs(epochs, [](const EpochRecord& r) {
    return static_cast<double>(r.cost.comm_volume);
  });
}

double EpochRunSummary::mean_migration_volume() const {
  return mean_over_repart_epochs(epochs, [](const EpochRecord& r) {
    return static_cast<double>(r.cost.migration_volume);
  });
}

double EpochRunSummary::mean_normalized_total_cost() const {
  return mean_over_repart_epochs(epochs, [](const EpochRecord& r) {
    return r.cost.normalized_total();
  });
}

double EpochRunSummary::mean_repart_seconds() const {
  return mean_over_repart_epochs(
      epochs, [](const EpochRecord& r) { return r.repart_seconds; });
}

EpochRunSummary run_epochs(EpochScenario& scenario,
                           RepartAlgorithm algorithm,
                           const RepartitionerConfig& cfg, Index num_epochs) {
  obs::TraceScope run_scope("epochs");
  EpochRunSummary summary;
  for (Index e = 1; e <= num_epochs; ++e) {
    EpochProblem problem = scenario.next_epoch();
    const Hypergraph h = graph_to_hypergraph(problem.graph);

    EpochRecord record;
    record.epoch = e;
    record.num_vertices = problem.graph.num_vertices();

    obs::TraceScope epoch_scope(problem.first ? "epoch.static"
                                              : "epoch.repartition");
    Partition chosen;
    if (problem.first) {
      // Epoch 1: static partitioning (paper Section 3). Each family uses
      // its own static partitioner, as in the paper's setup.
      WallTimer timer;
      const bool hypergraph_family =
          algorithm == RepartAlgorithm::kHypergraphRepart ||
          algorithm == RepartAlgorithm::kHypergraphScratch;
      chosen = hypergraph_family
                   ? partition_hypergraph(h, cfg.partition)
                   : partition_graph(problem.graph, cfg.partition);
      record.repart_seconds = timer.seconds();
      record.cost.alpha = cfg.alpha;
      record.cost.comm_volume = connectivity_cut(h, chosen);
      record.cost.migration_volume = 0;
    } else {
      RepartitionResult result = run_repartition_algorithm(
          algorithm, h, problem.graph, problem.old_partition, cfg);
      record.repart_seconds = result.seconds;
      record.cost = result.cost;
      record.num_migrated =
          num_migrated(problem.old_partition, result.partition);
      chosen = std::move(result.partition);
    }
    // Per-epoch invariant verification: the epoch hypergraph is
    // well-formed and the chosen assignment respects part range, fixed
    // vertices, and (at paranoid level) the reported cost components.
    if (check::enabled(cfg.partition.check_level)) {
      check::validate_hypergraph(h, cfg.partition.check_level);
      check::PartitionExpectations expect;
      expect.context = problem.first ? "epoch.static" : "epoch.repartition";
      expect.reported_cut = record.cost.comm_volume;
      if (!problem.first) {
        expect.old_partition = &problem.old_partition;
        expect.reported_migration = record.cost.migration_volume;
      }
      check::validate_partition(h, chosen, cfg.partition.check_level, expect);
    }
    record.imbalance = imbalance(problem.graph.vertex_weights(), chosen);
    obs::counter("epoch.count") += 1;
    obs::counter("epoch.comm_volume") +=
        static_cast<std::uint64_t>(record.cost.comm_volume);
    obs::counter("epoch.migration_volume") +=
        static_cast<std::uint64_t>(record.cost.migration_volume);
    obs::counter("epoch.total_cost") +=
        static_cast<std::uint64_t>(record.cost.total());
    obs::counter("epoch.migrated_vertices") +=
        static_cast<std::uint64_t>(record.num_migrated);
    summary.epochs.push_back(record);
    scenario.record_partition(chosen);
  }
  return summary;
}

}  // namespace hgr
