#include "core/epoch_driver.hpp"

#include <cstdio>
#include <fstream>
#include <string_view>

#include "check/validate.hpp"
#include "common/assert.hpp"
#include "common/timer.hpp"
#include "core/incremental_repart.hpp"
#include "graphpart/gpartitioner.hpp"
#include "hypergraph/convert.hpp"
#include "metrics/balance.hpp"
#include "metrics/cut.hpp"
#include "metrics/migration.hpp"
#include "obs/critical_path.hpp"
#include "obs/trace.hpp"
#include "partition/partitioner.hpp"

namespace hgr {

namespace {

/// Sum of `seconds` over every node named `name` in the phase tree;
/// diffed around an epoch's work to attribute phase time per epoch.
double sum_phase_seconds(const obs::PhaseSnapshot& node,
                         std::string_view name) {
  double s = node.name == name ? node.seconds : 0.0;
  for (const obs::PhaseSnapshot& child : node.children)
    s += sum_phase_seconds(child, name);
  return s;
}

struct PhaseSecondsMark {
  double coarsen = 0.0;
  double initial = 0.0;
  double refine = 0.0;
};

PhaseSecondsMark mark_phase_seconds() {
  const obs::PhaseSnapshot tree = obs::global_registry().phase_tree();
  PhaseSecondsMark m;
  m.coarsen = sum_phase_seconds(tree, "coarsen");
  m.initial = sum_phase_seconds(tree, "initial");
  m.refine = sum_phase_seconds(tree, "refine");
  return m;
}

double mean_over_repart_epochs(const std::vector<EpochRecord>& records,
                               double (*value)(const EpochRecord&)) {
  double sum = 0.0;
  Index count = 0;
  for (const EpochRecord& r : records) {
    // Filter on the record's own flag, not its position: in degraded or
    // restarted sequences the static bootstrap is not simply "epoch < 2".
    if (r.is_static) continue;
    sum += value(r);
    ++count;
  }
  return count == 0 ? 0.0 : sum / count;
}

}  // namespace

double EpochRunSummary::mean_comm_volume() const {
  return mean_over_repart_epochs(epochs, [](const EpochRecord& r) {
    return static_cast<double>(r.cost.comm_volume);
  });
}

double EpochRunSummary::mean_migration_volume() const {
  return mean_over_repart_epochs(epochs, [](const EpochRecord& r) {
    return static_cast<double>(r.cost.migration_volume);
  });
}

double EpochRunSummary::mean_normalized_total_cost() const {
  return mean_over_repart_epochs(epochs, [](const EpochRecord& r) {
    return r.cost.normalized_total();
  });
}

double EpochRunSummary::mean_repart_seconds() const {
  return mean_over_repart_epochs(
      epochs, [](const EpochRecord& r) { return r.repart_seconds; });
}

EpochRunSummary run_epochs(EpochScenario& scenario,
                           RepartAlgorithm algorithm,
                           const RepartitionerConfig& cfg, Index num_epochs) {
  obs::TraceScope run_scope("epochs");
  EpochRunSummary summary;
  // Two-tier routing state: the delta tracker diffs consecutive epochs,
  // the incremental repartitioner holds the drift baseline across them.
  EpochDeltaTracker delta_tracker;
  IncrementalRepartitioner incremental;
  static obs::CachedCounter tier_static_counter("epoch.tier_static");
  static obs::CachedCounter epoch_counter("epoch.count");
  static obs::CachedCounter comm_volume_counter("epoch.comm_volume");
  static obs::CachedCounter migration_volume_counter("epoch.migration_volume");
  static obs::CachedCounter total_cost_counter("epoch.total_cost");
  static obs::CachedCounter migrated_counter("epoch.migrated_vertices");
  for (Index e = 1; e <= num_epochs; ++e) {
    // Tag the epoch for span attribution and the live stats stream before
    // any repartition work runs.
    obs::set_current_epoch(e);
    obs::gauge("epoch.current").set(e);
    EpochProblem problem = scenario.next_epoch();
    const Hypergraph h = graph_to_hypergraph(problem.graph);
    const EpochDelta delta =
        delta_tracker.observe(problem.graph, problem.to_base);

    EpochRecord record;
    record.epoch = e;
    record.num_vertices = problem.graph.num_vertices();

    obs::TraceScope epoch_scope(problem.first ? "epoch.static"
                                              : "epoch.repartition");
    const PhaseSecondsMark before = mark_phase_seconds();
    Partition chosen;
    if (problem.first) {
      // Epoch 1: static partitioning (paper Section 3). Each family uses
      // its own static partitioner, as in the paper's setup.
      WallTimer timer;
      const bool hypergraph_family =
          algorithm == RepartAlgorithm::kHypergraphRepart ||
          algorithm == RepartAlgorithm::kHypergraphScratch;
      chosen = hypergraph_family
                   ? partition_hypergraph(h, cfg.partition)
                   : partition_graph(problem.graph, cfg.partition);
      record.repart_seconds = timer.seconds();
      record.cost.alpha = cfg.alpha;
      record.cost.comm_volume = connectivity_cut(h, chosen);
      record.cost.migration_volume = 0;
      record.tier = RepartTier::kStatic;
      // The bootstrap cut is the first drift baseline, so epoch 2 can
      // already ride the fast path.
      incremental.note_full(record.cost.comm_volume);
      tier_static_counter += 1;
    } else {
      // Guarded by the graceful-degradation policy: a repartition attempt
      // that throws (misbehaving rank, watchdog-detected deadlock,
      // injected fault) or overruns the epoch budget is retried, then the
      // epoch degrades to the configured fallback — the run keeps going.
      // run_tiered_repartition first offers the epoch to the O(delta)
      // incremental path (no-op when cfg.partition.incremental is kOff).
      const std::uint64_t span_before = obs::latest_critical_path().span_id;
      GuardedRepartitionResult guarded = run_tiered_repartition(
          algorithm, h, problem.graph, problem.old_partition, cfg,
          incremental, delta);
      record.repart_seconds = guarded.result.seconds;
      record.cost = guarded.result.cost;
      record.degraded = guarded.degraded;
      record.retries = guarded.retries;
      record.tier = guarded.tier;
      record.escalated = guarded.escalated;
      record.num_migrated =
          num_migrated(problem.old_partition, guarded.result.partition);
      chosen = std::move(guarded.result.partition);
      // Pick up the critical-path attribution published by this epoch's
      // repartition span (parallel runtime or the serial one-rank span).
      // Both guards matter: the span must be new (a degraded epoch ends
      // none, and the store is process-global) and tagged with this epoch.
      const obs::CriticalPathSummary cp = obs::latest_critical_path();
      if (cp.valid && cp.span_id != span_before &&
          cp.epoch == static_cast<std::int64_t>(e)) {
        record.critical_rank = cp.critical_rank;
        record.wait_frac = cp.wait_frac;
      }
    }
    record.is_static = problem.first;
    // Per-epoch invariant verification: the epoch hypergraph is
    // well-formed and the chosen assignment respects part range, fixed
    // vertices, and (at paranoid level) the reported cost components.
    if (check::enabled(cfg.partition.check_level)) {
      check::validate_hypergraph(h, cfg.partition.check_level);
      check::PartitionExpectations expect;
      expect.context = problem.first ? "epoch.static" : "epoch.repartition";
      expect.reported_cut = record.cost.comm_volume;
      if (!problem.first) {
        expect.old_partition = &problem.old_partition;
        expect.reported_migration = record.cost.migration_volume;
      }
      check::validate_partition(h, chosen, cfg.partition.check_level, expect);
    }
    const PhaseSecondsMark after = mark_phase_seconds();
    record.coarsen_seconds = after.coarsen - before.coarsen;
    record.initial_seconds = after.initial - before.initial;
    record.refine_seconds = after.refine - before.refine;
    record.imbalance = imbalance(problem.graph.vertex_weights(), chosen);
    epoch_counter += 1;
    comm_volume_counter += static_cast<std::uint64_t>(record.cost.comm_volume);
    migration_volume_counter +=
        static_cast<std::uint64_t>(record.cost.migration_volume);
    total_cost_counter += static_cast<std::uint64_t>(record.cost.total());
    migrated_counter += static_cast<std::uint64_t>(record.num_migrated);
    summary.epochs.push_back(record);
    scenario.record_partition(chosen);
  }
  return summary;
}

void EpochSeries::append(std::string dataset, std::string perturb,
                         std::string algorithm, Index k, Weight alpha,
                         Index trial, const EpochRunSummary& summary) {
  for (const EpochRecord& r : summary.epochs) {
    EpochSeriesRow row;
    row.dataset = dataset;
    row.perturb = perturb;
    row.algorithm = algorithm;
    row.k = k;
    row.alpha = alpha;
    row.trial = trial;
    row.record = r;
    rows.push_back(std::move(row));
  }
}

std::string EpochSeries::csv_header() {
  return "dataset,perturb,algorithm,k,alpha,trial,epoch,cut,"
         "migration_volume,total_cost,normalized_cost,imbalance,"
         "num_vertices,num_migrated,repart_seconds,coarsen_seconds,"
         "initial_seconds,refine_seconds,is_static,degraded,retries,"
         "tier,escalated,critical_rank,wait_frac";
}

namespace {

/// snprintf `fmt` onto `out`, growing past the stack buffer when the
/// rendered row is longer (extreme alpha/weight/double magnitudes used to
/// truncate silently against a fixed buffer). The stack size covers every
/// typical row; pathological magnitudes take the heap path.
template <typename... Args>
void append_formatted(std::string& out, const char* fmt, Args... args) {
  char buf[160];
  const int needed = std::snprintf(buf, sizeof(buf), fmt, args...);
  HGR_ASSERT_MSG(needed >= 0, "csv row formatting failed");
  if (static_cast<std::size_t>(needed) < sizeof(buf)) {
    out += buf;
    return;
  }
  std::string big(static_cast<std::size_t>(needed) + 1, '\0');
  const int written = std::snprintf(big.data(), big.size(), fmt, args...);
  HGR_ASSERT(written == needed);
  big.resize(static_cast<std::size_t>(needed));
  out += big;
}

}  // namespace

std::string EpochSeries::to_csv() const {
  std::string out = csv_header();
  out += '\n';
  for (const EpochSeriesRow& row : rows) {
    const EpochRecord& r = row.record;
    out += row.dataset;
    out += ',';
    out += row.perturb;
    out += ',';
    out += row.algorithm;
    append_formatted(
        out,
        ",%lld,%lld,%lld,%lld,%lld,%lld,%lld,%.6g,%.6g,%lld,%lld,%.6g,%.6g,"
        "%.6g,%.6g,%d,%d,%lld,%s,%d,%d,%.6g",
        static_cast<long long>(row.k), static_cast<long long>(row.alpha),
        static_cast<long long>(row.trial), static_cast<long long>(r.epoch),
        static_cast<long long>(r.cost.comm_volume),
        static_cast<long long>(r.cost.migration_volume),
        static_cast<long long>(r.cost.total()), r.cost.normalized_total(),
        r.imbalance, static_cast<long long>(r.num_vertices),
        static_cast<long long>(r.num_migrated), r.repart_seconds,
        r.coarsen_seconds, r.initial_seconds, r.refine_seconds,
        r.is_static ? 1 : 0, r.degraded ? 1 : 0,
        static_cast<long long>(r.retries), to_string(r.tier),
        r.escalated ? 1 : 0, r.critical_rank, r.wait_frac);
    out += '\n';
  }
  return out;
}

bool EpochSeries::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_csv();
  return static_cast<bool>(out);
}

}  // namespace hgr
