// Zoltan-style callback (query-function) interface.
//
// Zoltan's defining API trait is that the application never hands over a
// graph data structure; it registers query callbacks (number of objects,
// weights, edges/hyperedges) and Zoltan pulls what it needs. This adapter
// reproduces that surface: an application implements small std::function
// queries and gets back a partition plus a migration plan, without ever
// building a Hypergraph itself.
#pragma once

#include <functional>
#include <vector>

#include "core/repartitioner.hpp"
#include "hypergraph/hypergraph.hpp"

namespace hgr {

/// The query set an application registers. Only num_objects and
/// hyperedge enumeration are mandatory; weight/size queries default to 1.
struct ObjectQueries {
  /// Number of objects (vertices) the application owns.
  std::function<Index()> num_objects;

  /// Number of hyperedges (dependencies).
  std::function<Index()> num_hyperedges;

  /// Objects participating in hyperedge e (ids in [0, num_objects)).
  std::function<std::vector<Index>(Index e)> hyperedge_objects;

  /// Optional: communication cost of hyperedge e (default 1).
  std::function<Weight(Index e)> hyperedge_cost;

  /// Optional: computational weight of object v (default 1).
  std::function<Weight(Index v)> object_weight;

  /// Optional: migratable data size of object v (default 1).
  std::function<Weight(Index v)> object_size;

  /// Optional: fixed part of object v, kNoPart if free (default free).
  std::function<PartId(Index v)> fixed_part;
};

/// Pull the application's data through the queries into a hypergraph.
/// Mandatory queries must be set; optional ones may be null.
Hypergraph build_from_queries(const ObjectQueries& queries);

/// One-call static partitioning through the callback interface.
Partition partition_objects(const ObjectQueries& queries,
                            const PartitionConfig& cfg);

/// One-call dynamic repartitioning (the paper's method): current_part(v)
/// supplies the existing assignment.
RepartitionResult repartition_objects(
    const ObjectQueries& queries,
    const std::function<PartId(Index v)>& current_part,
    const RepartitionerConfig& cfg);

}  // namespace hgr
