#include "core/migration_plan.hpp"

#include <algorithm>
#include <cstdio>

#include "common/assert.hpp"

namespace hgr {

Weight MigrationPlan::max_part_traffic() const {
  Weight best = 0;
  for (const PartId p : part_range(k)) {
    Weight traffic = 0;
    for (const PartId q : part_range(k)) {
      if (q == p) continue;
      traffic += volume_between(p, q) + volume_between(q, p);
    }
    best = std::max(best, traffic);
  }
  return best;
}

std::string MigrationPlan::summary() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "moves=%zu volume=%lld max_part_traffic=%lld", moves.size(),
                static_cast<long long>(total_volume),
                static_cast<long long>(max_part_traffic()));
  return buf;
}

MigrationPlan extract_migration_plan(IdSpan<VertexId, const Weight> vertex_sizes,
                                     const Partition& old_p,
                                     const Partition& new_p) {
  HGR_ASSERT(old_p.num_vertices() == new_p.num_vertices());
  HGR_ASSERT(old_p.k == new_p.k);
  HGR_ASSERT(vertex_sizes.ssize() == new_p.num_vertices());

  MigrationPlan plan;
  plan.k = new_p.k;
  plan.volume_matrix.assign(
      static_cast<std::size_t>(plan.k) * static_cast<std::size_t>(plan.k), 0);
  for (const VertexId v : new_p.vertices()) {
    const PartId from = old_p[v];
    const PartId to = new_p[v];
    if (from == to) continue;
    const Weight size = vertex_sizes[v];
    plan.moves.push_back({v, from, to, size});
    plan.total_volume += size;
    plan.volume_matrix[static_cast<std::size_t>(from.v) *
                           static_cast<std::size_t>(plan.k) +
                       static_cast<std::size_t>(to.v)] += size;
  }
  return plan;
}

}  // namespace hgr
