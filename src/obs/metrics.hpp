// Metric types beyond counters: log-bucketed histograms and gauges.
//
// The trace layer's counters answer "how many / how much total", which is
// the wrong shape for latency: a collective whose p99 is 50x its median
// looks identical to a uniform one in a sum. Histogram keeps a fixed
// 128-bucket base-2 log layout over the full signed 64-bit range (FM move
// gains are signed), so recording is a handful of relaxed atomic ops —
// cheap enough for per-call comm latency and per-move gain distributions —
// and snapshots are mergeable across threads and ranks by bucket-wise
// addition. Percentiles (p50/p95/p99) come from a bucket walk at export
// time, never on the hot path.
//
// Gauge is a last-value-wins signed level (current epoch, queue depth):
// the one metric shape counters cannot fake, since they only go up.
//
// Registration mirrors counters: obs::histogram(name)/obs::gauge(name)
// live in the same Registry (trace.hpp) and are emitted in the
// hgr-trace-v2 export under "histograms"/"gauges". Hot loops use
// obs::CachedHistogram (trace.hpp), the histogram twin of CachedCounter.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace hgr::obs {

/// Bucket count of the fixed log-2 layout: bucket 64 holds exactly 0,
/// buckets 65..127 hold positive magnitudes [2^e, 2^(e+1)), buckets 63..0
/// mirror them for negative values. Every int64 maps to exactly one bucket.
inline constexpr int kHistogramBuckets = 128;

/// The bucket `value` lands in (always in [0, kHistogramBuckets)).
int histogram_bucket(std::int64_t value);

/// Inclusive lower bound of `bucket`'s value range.
std::int64_t histogram_bucket_low(int bucket);

/// Inclusive upper bound of `bucket`'s value range.
std::int64_t histogram_bucket_high(int bucket);

/// Immutable copy of a histogram's state; mergeable (bucket-wise add) so
/// per-thread or per-rank histograms can be folded into one distribution.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;  // 0 when count == 0
  std::int64_t max = 0;  // 0 when count == 0
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Value at quantile `q` in [0, 1], estimated as the midpoint of the
  /// bucket holding the q-th recorded value, clamped to [min, max] so the
  /// estimate never leaves the observed range. 0 when empty.
  std::int64_t quantile(double q) const;
  std::int64_t p50() const { return quantile(0.50); }
  std::int64_t p95() const { return quantile(0.95); }
  std::int64_t p99() const { return quantile(0.99); }

  /// Fold `other` into this snapshot.
  void merge(const HistogramSnapshot& other);

  /// Plain (non-atomic, single-owner) record. A snapshot doubles as the
  /// batch accumulator for very hot single-threaded seams (per-move FM
  /// gains): record locally at a few ns per value, then fold the batch
  /// into the shared registry Histogram once per pass via
  /// Histogram::merge().
  void record(std::int64_t value);

  /// JSON object: {"count":..,"sum":..,"min":..,"max":..,"mean":..,
  /// "p50":..,"p95":..,"p99":..} (the hgr-trace-v2 per-histogram value).
  std::string to_json() const;
};

/// Lock-free log-bucketed histogram over signed 64-bit values.
///
/// record() is wait-free except for the min/max CAS loops (which contend
/// only while the running extremes are actually moving) and uses relaxed
/// atomics throughout: each recorded value is independent, and snapshot()
/// makes no cross-field consistency promise beyond "every completed record
/// is eventually visible" — a snapshot raced with writers may be mid-update
/// (e.g. count ahead of sum), which is fine for monitoring output and is
/// exactly the counter semantics the rest of the trace layer already has.
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(std::int64_t value);

  /// Fold a locally accumulated batch into this histogram (bucket-wise
  /// atomic adds — one call amortizes an entire pass of records).
  void merge(const HistogramSnapshot& batch);

  HistogramSnapshot snapshot() const;

 private:
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> min_{INT64_MAX};
  std::atomic<std::int64_t> max_{INT64_MIN};
};

/// Last-value-wins signed level. set() overwrites, add() adjusts; both are
/// relaxed atomics, safe from any thread.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

}  // namespace hgr::obs
