// Live stats stream: a bounded ring of registry snapshots sampled at
// top-level phase boundaries.
//
// The trace JSON is a post-mortem artifact; a long-running partitioner (or
// the future hgr_serve daemon) needs to answer "what is the run doing right
// now" without stopping. When the stream is enabled, every close of a
// *top-level* TraceScope (the calling thread's phase stack emptying) pushes
// one StatsSnapshot — phase name, duration, and the full counter/gauge
// state at that instant — into a fixed-capacity ring (oldest dropped).
//
// Two consumers:
//   - `hgr_cli --stats-stream=FILE` enables the stream and writes the ring
//     as newline-delimited hgr-stats-v1 JSON when the run ends;
//   - request_stats_dump() (async-signal-safe: one atomic store, installed
//     on SIGUSR1 by hgr_cli) marks a dump pending, and the next phase-close
//     sample flushes the ring to the configured path mid-run.
//
// The disabled check on the phase-close path is one relaxed atomic load;
// sampling itself takes the stream mutex plus a registry snapshot, which is
// fine at phase granularity (top-level phases close a handful of times per
// run, not per loop iteration).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hgr::obs {

class Registry;

/// One sampled point of the run: the top-level phase that just closed plus
/// the registry's counter/gauge state at that instant.
struct StatsSnapshot {
  std::uint64_t seq = 0;    // monotonically increasing sample number
  std::uint64_t ts_ns = 0;  // nanoseconds since the stream was enabled
  std::string phase;        // name of the top-level phase that closed
  double seconds = 0.0;     // that phase's duration
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;

  /// One newline-free hgr-stats-v1 JSON object (one stream line).
  std::string to_json() const;
};

/// Turn sampling on/off. Enabling (re)starts the stream clock; the ring
/// contents survive until reset_stats_stream().
void set_stats_stream_enabled(bool on);
bool stats_stream_enabled();

/// Ring capacity (default 256 samples); applies to subsequent samples,
/// trimming the ring if shrunk.
void set_stats_ring_capacity(std::size_t n);

/// Path that triggered dumps (request_stats_dump) flush to; empty disables
/// triggered flushing (the ring still fills).
void set_stats_stream_path(std::string path);

/// Phase-close hook (called by Registry::end_phase when a thread's stack
/// empties and the stream is enabled). Samples `reg` into the ring, then
/// honors any pending dump request.
void stats_stream_on_phase_close(Registry& reg, const std::string& phase,
                                 double seconds);

/// Copy of the ring, oldest first.
std::vector<StatsSnapshot> stats_stream_snapshot();

/// Total samples dropped to the ring bound since the last reset.
std::uint64_t stats_stream_dropped();

/// Drop all samples and counters; leaves enabled/capacity/path untouched.
void reset_stats_stream();

/// Async-signal-safe dump trigger: marks a dump pending. The next sampled
/// phase boundary writes the ring to the configured path.
void request_stats_dump();
bool stats_dump_pending();

/// Service a pending dump request now, if any: writes the ring to the
/// configured path and clears the pending flag. Returns true when a dump
/// was written. Phase boundaries flush automatically, but a dump requested
/// while no phase is running — the common state of an idle daemon — would
/// otherwise sit pending forever; hgr_serve's idle loop and stream close
/// (set_stats_stream_enabled(false)) call this so those requests land.
bool flush_pending_stats_dump();

/// Write the ring to `path` (truncating), one hgr-stats-v1 JSON object per
/// line, oldest first. Returns false on I/O failure.
bool write_stats_stream(const std::string& path);

}  // namespace hgr::obs
