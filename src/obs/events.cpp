#include "obs/events.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

namespace hgr::obs {

namespace {

constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// One slot of a ring buffer. Every field is an atomic so a snapshot racing
// a wrapping writer is well-defined (TSan-clean); `stamp` is the 1-based
// index of the event occupying the slot, used to detect mid-overwrite
// slots (stamp mismatch -> skip).
struct Slot {
  std::atomic<const char*> name{nullptr};
  std::atomic<const char*> category{nullptr};
  std::atomic<std::uint64_t> ts_ns{0};
  std::atomic<std::uint64_t> arg{kNoEventArg};
  std::atomic<std::uint64_t> stamp{0};
  std::atomic<std::uint8_t> type{0};
  std::atomic<int> rank{-1};
};

class ThreadBuffer {
 public:
  ThreadBuffer(std::uint32_t tid, std::size_t capacity, std::uint64_t epoch)
      : tid_(tid), epoch_(epoch), mask_(capacity - 1), slots_(capacity) {}

  void push(const char* name, const char* category, EventType type,
            std::uint64_t ts_ns, int rank, std::uint64_t arg) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    Slot& s = slots_[static_cast<std::size_t>(h) & mask_];
    s.stamp.store(0, std::memory_order_release);  // invalidate for readers
    s.name.store(name, std::memory_order_relaxed);
    s.category.store(category, std::memory_order_relaxed);
    s.ts_ns.store(ts_ns, std::memory_order_relaxed);
    s.arg.store(arg, std::memory_order_relaxed);
    s.type.store(static_cast<std::uint8_t>(type), std::memory_order_relaxed);
    s.rank.store(rank, std::memory_order_relaxed);
    s.stamp.store(h + 1, std::memory_order_release);
    head_.store(h + 1, std::memory_order_release);
  }

  void snapshot_into(std::vector<Event>& out, std::uint64_t& dropped) const {
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    const std::uint64_t cap = mask_ + 1;
    const std::uint64_t begin = h > cap ? h - cap : 0;
    dropped += begin;
    for (std::uint64_t i = begin; i < h; ++i) {
      const Slot& s = slots_[static_cast<std::size_t>(i) & mask_];
      Event e;
      e.name = s.name.load(std::memory_order_relaxed);
      e.category = s.category.load(std::memory_order_relaxed);
      e.ts_ns = s.ts_ns.load(std::memory_order_relaxed);
      e.arg = s.arg.load(std::memory_order_relaxed);
      const std::uint8_t t = s.type.load(std::memory_order_relaxed);
      e.rank = s.rank.load(std::memory_order_relaxed);
      e.tid = tid_;
      // A concurrent writer wrapping into this slot invalidates the stamp
      // before touching the fields, so a matching stamp read *after* the
      // fields means they belong together.
      if (s.stamp.load(std::memory_order_acquire) != i + 1 ||
          e.name == nullptr || t > 2) {
        ++dropped;
        continue;
      }
      e.type = static_cast<EventType>(t);
      out.push_back(e);
    }
  }

  std::uint64_t epoch() const { return epoch_; }

 private:
  std::uint32_t tid_;
  std::uint64_t epoch_;
  std::size_t mask_;
  std::atomic<std::uint64_t> head_{0};
  std::vector<Slot> slots_;
};

struct EventLog {
  std::mutex mutex;
  // Buffers are never freed while the process lives: a writer may hold a
  // raw pointer across a reset. reset_events() bumps `epoch` instead;
  // stale-epoch buffers are excluded from snapshots and writers re-register
  // on their next emit.
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::uint32_t next_tid = 0;               // guarded by mutex
  std::size_t capacity = kDefaultCapacity;  // guarded by mutex
  std::atomic<std::uint64_t> epoch{1};
  std::atomic<bool> enabled{false};
  std::atomic<std::uint64_t> t0_ns{0};
};

EventLog& event_log() {
  static EventLog log;
  return log;
}

thread_local ThreadBuffer* tl_buffer = nullptr;
thread_local std::uint64_t tl_epoch = 0;
thread_local int tl_rank = -1;

}  // namespace

bool events_enabled() {
  return event_log().enabled.load(std::memory_order_relaxed);
}

void set_events_enabled(bool on) {
  EventLog& log = event_log();
  if (on) {
    std::uint64_t expected = 0;
    log.t0_ns.compare_exchange_strong(expected, monotonic_ns(),
                                      std::memory_order_acq_rel);
  }
  log.enabled.store(on, std::memory_order_release);
}

void set_thread_rank(int rank) { tl_rank = rank; }

int thread_rank() { return tl_rank; }

const char* intern_event_name(std::string_view name) {
  static std::mutex mutex;
  static std::set<std::string, std::less<>> names;
  std::lock_guard lock(mutex);
  const auto it = names.find(name);
  if (it != names.end()) return it->c_str();
  return names.emplace(name).first->c_str();
}

std::uint64_t event_clock_ns() {
  const std::uint64_t t0 = event_log().t0_ns.load(std::memory_order_acquire);
  if (t0 == 0) return 0;
  return monotonic_ns() - t0;
}

void emit_event(const char* name, const char* category, EventType type,
                std::uint64_t arg) {
  EventLog& log = event_log();
  if (!log.enabled.load(std::memory_order_relaxed)) return;
  const std::uint64_t epoch = log.epoch.load(std::memory_order_acquire);
  if (tl_buffer == nullptr || tl_epoch != epoch) {
    std::lock_guard lock(log.mutex);
    log.buffers.push_back(
        std::make_unique<ThreadBuffer>(log.next_tid++, log.capacity, epoch));
    tl_buffer = log.buffers.back().get();
    tl_epoch = epoch;
  }
  tl_buffer->push(name, category, type, event_clock_ns(), tl_rank, arg);
}

EventsSnapshot snapshot_events() {
  EventLog& log = event_log();
  EventsSnapshot snap;
  std::lock_guard lock(log.mutex);
  const std::uint64_t epoch = log.epoch.load(std::memory_order_acquire);
  for (const auto& buf : log.buffers) {
    if (buf->epoch() != epoch) continue;
    buf->snapshot_into(snap.events, snap.dropped);
  }
  return snap;
}

void reset_events() {
  EventLog& log = event_log();
  std::lock_guard lock(log.mutex);
  log.epoch.fetch_add(1, std::memory_order_acq_rel);
}

void set_event_ring_capacity(std::size_t capacity) {
  EventLog& log = event_log();
  std::lock_guard lock(log.mutex);
  log.capacity = round_up_pow2(std::max<std::size_t>(capacity, 2));
}

namespace {

void escape_to(std::string& out, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out += c;
    }
  }
}

// Track ids: rank threads share one track per rank (ranks run on fresh
// threads each Comm::run, but logically continue the same timeline);
// non-rank threads get a high track id from their buffer tid.
std::uint32_t track_of(const Event& e) {
  return e.rank >= 0 ? static_cast<std::uint32_t>(e.rank)
                     : 100000 + e.tid;
}

}  // namespace

std::string chrome_trace_json() {
  EventsSnapshot snap = snapshot_events();
  // Stable sort by timestamp: events within one thread's buffer are already
  // in emission order, so ties (nested scopes opened in the same tick)
  // keep their begin/end nesting.
  std::stable_sort(snap.events.begin(), snap.events.end(),
                   [](const Event& a, const Event& b) {
                     return a.ts_ns < b.ts_ns;
                   });

  std::map<std::uint32_t, std::string> track_names;
  for (const Event& e : snap.events) {
    const std::uint32_t track = track_of(e);
    if (track_names.count(track) != 0) continue;
    char buf[32];
    if (e.rank >= 0)
      std::snprintf(buf, sizeof(buf), "rank %d", e.rank);
    else
      std::snprintf(buf, sizeof(buf), "thread %u", e.tid);
    track_names[track] = buf;
  }

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto comma = [&out, &first] {
    if (!first) out += ',';
    first = false;
  };
  comma();
  out +=
      "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"hgr\"}}";
  for (const auto& [track, name] : track_names) {
    char buf[96];
    comma();
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"M\",\"pid\":0,\"tid\":%u,\"name\":"
                  "\"thread_name\",\"args\":{\"name\":\"%s\"}}",
                  track, name.c_str());
    out += buf;
    comma();
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"M\",\"pid\":0,\"tid\":%u,\"name\":"
                  "\"thread_sort_index\",\"args\":{\"sort_index\":%u}}",
                  track, track);
    out += buf;
  }
  // Spans left open by an exception or degradation path (a faulted rank
  // unwinds without its EventSpan destructors reaching the ring in order,
  // or the process exports mid-phase). Unterminated B events make viewers
  // drop the whole tail of the track, so synthesize matching E events at
  // the capture's last timestamp instead of losing them.
  std::map<std::uint32_t, std::vector<const Event*>> open_spans;
  std::uint64_t max_ts = 0;
  for (const Event& e : snap.events) {
    comma();
    out += "{\"name\":\"";
    escape_to(out, e.name);
    out += "\",\"cat\":\"";
    escape_to(out, e.category != nullptr ? e.category : "event");
    char buf[128];
    const char ph = e.type == EventType::kBegin   ? 'B'
                    : e.type == EventType::kEnd   ? 'E'
                                                  : 'i';
    std::snprintf(buf, sizeof(buf), "\",\"ph\":\"%c\",\"pid\":0,\"tid\":%u,"
                  "\"ts\":%.3f",
                  ph, track_of(e), static_cast<double>(e.ts_ns) / 1e3);
    out += buf;
    if (e.type == EventType::kInstant) out += ",\"s\":\"t\"";
    if (e.arg != kNoEventArg) {
      std::snprintf(buf, sizeof(buf), ",\"args\":{\"bytes\":%llu}",
                    static_cast<unsigned long long>(e.arg));
      out += buf;
    }
    out += '}';
    max_ts = std::max(max_ts, e.ts_ns);
    if (e.type == EventType::kBegin) {
      open_spans[track_of(e)].push_back(&e);
    } else if (e.type == EventType::kEnd) {
      std::vector<const Event*>& stack = open_spans[track_of(e)];
      if (!stack.empty()) stack.pop_back();
    }
  }
  std::uint64_t flushed = 0;
  for (const auto& [track, stack] : open_spans) {
    // Innermost first: E events close spans in strict nesting order.
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      comma();
      out += "{\"name\":\"";
      escape_to(out, (*it)->name);
      out += "\",\"cat\":\"";
      escape_to(out, (*it)->category != nullptr ? (*it)->category : "event");
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "\",\"ph\":\"E\",\"pid\":0,\"tid\":%u,\"ts\":%.3f}",
                    track, static_cast<double>(max_ts) / 1e3);
      out += buf;
      ++flushed;
    }
  }
  out += "],\"otherData\":{\"droppedEvents\":";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%llu,\"flushedSpans\":%llu",
                static_cast<unsigned long long>(snap.dropped),
                static_cast<unsigned long long>(flushed));
  out += buf;
  out += "}}";
  return out;
}

bool write_chrome_trace(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << chrome_trace_json() << '\n';
  return static_cast<bool>(out);
}

}  // namespace hgr::obs
