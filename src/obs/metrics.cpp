#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

namespace hgr::obs {

namespace {

/// floor(log2(x)) for x >= 1.
int log2_floor(std::uint64_t x) {
#if defined(__GNUC__) || defined(__clang__)
  return 63 - __builtin_clzll(x);
#else
  int e = 0;
  while (x >>= 1) ++e;
  return e;
#endif
}

void atomic_max(std::atomic<std::int64_t>& cell, std::int64_t v) {
  std::int64_t cur = cell.load(std::memory_order_relaxed);
  while (v > cur &&
         !cell.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<std::int64_t>& cell, std::int64_t v) {
  std::int64_t cur = cell.load(std::memory_order_relaxed);
  while (v < cur &&
         !cell.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

int histogram_bucket(std::int64_t value) {
  if (value == 0) return 64;
  if (value > 0) return 65 + log2_floor(static_cast<std::uint64_t>(value));
  // value < 0: mirror by magnitude; INT64_MIN's magnitude (2^63) must not
  // be negated through int64, so go through uint64 two's complement.
  const std::uint64_t mag = ~static_cast<std::uint64_t>(value) + 1;
  return 63 - log2_floor(mag);
}

std::int64_t histogram_bucket_low(int bucket) {
  if (bucket == 64) return 0;
  if (bucket > 64) return std::int64_t{1} << (bucket - 65);
  // Negative side: bucket 63-e covers [-(2^(e+1)-1), -2^e]; e = 63-bucket.
  const int e = 63 - bucket;
  if (e == 63) return INT64_MIN;      // single-value bucket for -2^63
  if (e == 62) return INT64_MIN + 1;  // -(2^63-1) without the 2^63 overflow
  return -((std::int64_t{1} << (e + 1)) - 1);
}

std::int64_t histogram_bucket_high(int bucket) {
  if (bucket == 64) return 0;
  if (bucket > 64) {
    const int e = bucket - 65;
    if (e == 62) return INT64_MAX;  // top bucket saturates
    return (std::int64_t{1} << (e + 1)) - 1;
  }
  const int e = 63 - bucket;
  if (e == 63) return INT64_MIN;  // negating -2^63 would overflow
  return -(std::int64_t{1} << e);
}

std::int64_t HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th value (1-based); walk buckets from the most negative.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(q * static_cast<double>(count) + 0.5));
  std::uint64_t seen = 0;
  for (int b = 0; b < kHistogramBuckets; ++b) {
    seen += buckets[static_cast<std::size_t>(b)];
    if (seen >= rank) {
      const std::int64_t lo = histogram_bucket_low(b);
      const std::int64_t hi = histogram_bucket_high(b);
      // Midpoint without overflow, clamped to the observed range.
      const std::int64_t mid = lo + (hi - lo) / 2;
      return std::clamp(mid, min, max);
    }
  }
  return max;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
  for (int b = 0; b < kHistogramBuckets; ++b)
    buckets[static_cast<std::size_t>(b)] +=
        other.buckets[static_cast<std::size_t>(b)];
}

std::string HistogramSnapshot::to_json() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"count\":%llu,\"sum\":%lld,\"min\":%lld,\"max\":%lld,"
                "\"mean\":%.6g,\"p50\":%lld,\"p95\":%lld,\"p99\":%lld}",
                static_cast<unsigned long long>(count),
                static_cast<long long>(sum), static_cast<long long>(min),
                static_cast<long long>(max), mean(),
                static_cast<long long>(p50()), static_cast<long long>(p95()),
                static_cast<long long>(p99()));
  return buf;
}

void HistogramSnapshot::record(std::int64_t value) {
  ++buckets[static_cast<std::size_t>(histogram_bucket(value))];
  if (count == 0) {
    min = max = value;
  } else {
    min = std::min(min, value);
    max = std::max(max, value);
  }
  ++count;
  sum += value;
}

void Histogram::record(std::int64_t value) {
  const int b = histogram_bucket(value);
  buckets_[static_cast<std::size_t>(b)].fetch_add(1,
                                                  std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  atomic_min(min_, value);
  atomic_max(max_, value);
}

void Histogram::merge(const HistogramSnapshot& batch) {
  if (batch.count == 0) return;
  for (int b = 0; b < kHistogramBuckets; ++b) {
    const std::uint64_t n = batch.buckets[static_cast<std::size_t>(b)];
    if (n != 0)
      buckets_[static_cast<std::size_t>(b)].fetch_add(
          n, std::memory_order_relaxed);
  }
  count_.fetch_add(batch.count, std::memory_order_relaxed);
  sum_.fetch_add(batch.sum, std::memory_order_relaxed);
  atomic_min(min_, batch.min);
  atomic_max(max_, batch.max);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  for (int b = 0; b < kHistogramBuckets; ++b)
    s.buckets[static_cast<std::size_t>(b)] =
        buckets_[static_cast<std::size_t>(b)].load(std::memory_order_relaxed);
  if (s.count != 0) {
    s.min = min_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
  }
  return s;
}

}  // namespace hgr::obs
