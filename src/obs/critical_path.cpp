#include "obs/critical_path.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <map>
#include <mutex>

#include "obs/trace.hpp"

namespace hgr::obs {

namespace {

/// Spans retained for the trace section; long epoch sweeps drop the
/// oldest rather than growing without bound.
constexpr std::size_t kMaxRetainedSpans = 128;

struct Span {
  std::uint64_t id = 0;
  std::int64_t epoch = -1;
  bool ended = false;
  std::vector<RankPhaseSample> samples;
  CriticalPathSummary summary;
};

struct Store {
  std::mutex mutex;
  std::deque<Span> spans;
  std::uint64_t next_id = 1;
  std::int64_t epoch = -1;
  CriticalPathSummary latest;
};

Store& store() {
  static Store s;
  return s;
}

Span* find_span(Store& s, std::uint64_t id) {
  for (Span& span : s.spans)
    if (span.id == id) return &span;
  return nullptr;
}

CriticalPathSummary summarize(const Span& span) {
  CriticalPathSummary out;
  out.span_id = span.id;
  out.epoch = span.epoch;
  if (span.samples.empty()) return out;
  // Total and blocked seconds per rank.
  std::map<int, double> total, wait;
  for (const RankPhaseSample& s : span.samples) {
    total[s.rank] += s.seconds;
    wait[s.rank] += s.wait_seconds;
  }
  int crit = -1;
  double crit_seconds = -1.0;
  for (const auto& [rank, seconds] : total) {
    if (seconds > crit_seconds) {
      crit = rank;
      crit_seconds = seconds;
    }
  }
  out.critical_rank = crit;
  out.critical_seconds = crit_seconds;
  out.wait_frac = crit_seconds > 0.0 ? wait[crit] / crit_seconds : 0.0;
  // The critical rank's largest phase names the bound.
  double best = -1.0;
  for (const RankPhaseSample& s : span.samples) {
    if (s.rank == crit && s.seconds > best) {
      best = s.seconds;
      out.critical_phase = s.phase;
    }
  }
  out.valid = true;
  return out;
}

void span_to_json(std::string& out, const Span& span) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{\"span_id\":%llu,\"epoch\":%lld,\"critical_rank\":%d,"
                "\"critical_phase\":\"",
                static_cast<unsigned long long>(span.id),
                static_cast<long long>(span.epoch),
                span.summary.critical_rank);
  out += buf;
  json_escape(out, span.summary.critical_phase);
  std::snprintf(buf, sizeof(buf),
                "\",\"critical_seconds\":%.9g,\"wait_frac\":%.6g,"
                "\"ranks\":[",
                span.summary.critical_seconds, span.summary.wait_frac);
  out += buf;
  // Group samples by rank, ranks ascending, phases in record order.
  std::map<int, std::vector<const RankPhaseSample*>> by_rank;
  for (const RankPhaseSample& s : span.samples) by_rank[s.rank].push_back(&s);
  bool first_rank = true;
  for (const auto& [rank, samples] : by_rank) {
    if (!first_rank) out += ',';
    first_rank = false;
    std::snprintf(buf, sizeof(buf), "{\"rank\":%d,\"phases\":[", rank);
    out += buf;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      if (i != 0) out += ',';
      out += "{\"name\":\"";
      json_escape(out, samples[i]->phase);
      std::snprintf(buf, sizeof(buf),
                    "\",\"seconds\":%.9g,\"wait_seconds\":%.9g}",
                    samples[i]->seconds, samples[i]->wait_seconds);
      out += buf;
    }
    out += "]}";
  }
  out += "]}";
}

std::string section_json_locked(const Store& s) {
  std::string out = "{\"spans\":[";
  bool first = true;
  for (const Span& span : s.spans) {
    if (!span.ended) continue;
    if (!first) out += ',';
    first = false;
    span_to_json(out, span);
  }
  out += "]}";
  return out;
}

}  // namespace

void set_current_epoch(std::int64_t epoch) {
  Store& s = store();
  std::lock_guard lock(s.mutex);
  s.epoch = epoch;
}

std::int64_t current_epoch() {
  Store& s = store();
  std::lock_guard lock(s.mutex);
  return s.epoch;
}

std::uint64_t begin_epoch_span() {
  Store& s = store();
  std::lock_guard lock(s.mutex);
  Span span;
  span.id = s.next_id++;
  span.epoch = s.epoch;
  s.spans.push_back(std::move(span));
  while (s.spans.size() > kMaxRetainedSpans) s.spans.pop_front();
  return s.spans.back().id;
}

void record_rank_phase(std::uint64_t span_id, int rank,
                       std::string_view phase, double seconds,
                       double wait_seconds) {
  Store& s = store();
  std::lock_guard lock(s.mutex);
  Span* span = find_span(s, span_id);
  if (span == nullptr) return;
  RankPhaseSample sample;
  sample.rank = rank;
  sample.phase = std::string(phase);
  sample.seconds = seconds;
  sample.wait_seconds = std::max(0.0, wait_seconds);
  span->samples.push_back(std::move(sample));
}

void end_epoch_span(std::uint64_t span_id) {
  Store& s = store();
  std::string section;
  {
    std::lock_guard lock(s.mutex);
    Span* span = find_span(s, span_id);
    if (span == nullptr) return;
    span->ended = true;
    span->summary = summarize(*span);
    s.latest = span->summary;
    section = section_json_locked(s);
  }
  // Publish outside the store lock (the registry has its own mutex).
  global_registry().set_section("critical_path", std::move(section));
}

CriticalPathSummary latest_critical_path() {
  Store& s = store();
  std::lock_guard lock(s.mutex);
  return s.latest;
}

std::string critical_path_to_json() {
  Store& s = store();
  std::lock_guard lock(s.mutex);
  return section_json_locked(s);
}

void reset_critical_path() {
  Store& s = store();
  std::lock_guard lock(s.mutex);
  s.spans.clear();
  s.latest = CriticalPathSummary{};
  s.epoch = -1;
}

}  // namespace hgr::obs
