// Phase-level observability: hierarchical trace scopes, named monotonic
// counters, and a JSON exporter.
//
// The paper's evaluation is a measurement story (total cost alpha*comm +
// mig, partitioner run time broken down by phase), so instrumentation is a
// first-class subsystem: every pipeline stage opens a TraceScope and bumps
// counters, and any driver (hgr_cli --trace-json=, the bench binaries) can
// dump the whole run as machine-readable JSON. See docs/OBSERVABILITY.md
// for the schema and the counter naming convention.
//
// Threading model: counters are atomics and may be bumped from any thread
// (the parallel runtime's rank threads do). The phase tree keeps one scope
// stack per thread; scopes opened on different threads with the same name
// under the same parent merge into one node (seconds summed, calls
// counted), so per-rank instrumentation aggregates naturally.
//
// The global registry is injectable: tests isolate themselves with
//   obs::Registry reg;
//   obs::ScopedRegistry scope(reg);
// which routes obs::counter()/TraceScope to `reg` until scope exits.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/timer.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"

namespace hgr::obs {

/// Immutable copy of the phase tree, safe to inspect while the live
/// registry keeps accumulating.
struct PhaseSnapshot {
  std::string name;
  double seconds = 0.0;       // total wall time across all calls
  std::uint64_t calls = 0;    // completed scopes merged into this node
  /// Longest / shortest single call merged into this node. Same-named
  /// scopes merge across threads (the parallel runtime's rank threads
  /// do), so `seconds` alone hides skew: p ranks timing the same phase
  /// sum to ~p× the wall time. max_seconds is the representative per-call
  /// (per-rank) wall time and max-min is the skew.
  double max_seconds = 0.0;
  double min_seconds = 0.0;   // 0 when calls == 0
  std::vector<PhaseSnapshot> children;
};

/// Find a node by path from `root` (children only, not root itself).
/// Returns nullptr if any path element is missing.
const PhaseSnapshot* find_phase(const PhaseSnapshot& root,
                                std::initializer_list<std::string_view> path);

/// Holds one run's phase tree and counters.
class Registry {
 public:
  Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Named monotonic counter; created on first use. The returned atomic
  /// stays valid for the registry's lifetime.
  std::atomic<std::uint64_t>& counter(std::string_view name);

  /// Current value, 0 if the counter was never touched.
  std::uint64_t counter_value(std::string_view name) const;

  /// Snapshot of all counters.
  std::map<std::string, std::uint64_t> counters() const;

  /// Named log-bucketed histogram; created on first use. The returned
  /// reference stays valid for the registry's lifetime; record() is
  /// lock-free (metrics.hpp), only this lookup takes the registry mutex.
  Histogram& histogram(std::string_view name);

  /// Named gauge (last-value-wins level); created on first use.
  Gauge& gauge(std::string_view name);

  /// Snapshot of all histograms / gauge values.
  std::map<std::string, HistogramSnapshot> histograms() const;
  std::map<std::string, std::int64_t> gauges() const;

  /// Snapshot of the phase tree (root is a synthetic "" node whose
  /// children are the top-level phases).
  PhaseSnapshot phase_tree() const;

  /// Attach a pre-serialized JSON value under top-level key `name` in the
  /// trace export (e.g. the comm runtime's telemetry). Overwrites any
  /// previous value for the same key. `json` must be a valid JSON value.
  void set_section(std::string_view name, std::string json);

  /// All attached sections, keyed by name.
  std::map<std::string, std::string> sections() const;

  /// Unique per-registry id (never reused); lets cached counter handles
  /// detect that the global registry was swapped or recreated.
  std::uint64_t id() const { return id_; }

  /// Drop all phases, counters, histograms, gauges and sections (scope
  /// stacks must be empty).
  void reset();

  // TraceScope plumbing: open/close a phase on the calling thread's stack.
  void begin_phase(std::string_view name);
  void end_phase(double seconds);

 private:
  struct Node {
    std::string name;
    double seconds = 0.0;
    std::uint64_t calls = 0;
    double max_seconds = 0.0;
    double min_seconds = 0.0;
    std::vector<std::unique_ptr<Node>> children;
  };

  Node* find_or_add_child(Node& parent, std::string_view name);

  const std::uint64_t id_;
  mutable std::mutex mutex_;
  Node root_;
  std::map<std::thread::id, std::vector<Node*>> stacks_;
  std::map<std::string, std::unique_ptr<std::atomic<std::uint64_t>>,
           std::less<>>
      counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::string, std::less<>> sections_;
};

/// The process-global registry, unless one was injected.
Registry& global_registry();

/// Inject `r` as the global registry (nullptr restores the default).
/// Returns the previous override (nullptr if none).
Registry* set_global_registry(Registry* r);

/// RAII injection, for tests and scoped measurement runs.
class ScopedRegistry {
 public:
  explicit ScopedRegistry(Registry& r) : prev_(set_global_registry(&r)) {}
  ~ScopedRegistry() { set_global_registry(prev_); }
  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;

 private:
  Registry* prev_;
};

/// Shorthand: obs::counter("refine.moves") += n;
inline std::atomic<std::uint64_t>& counter(std::string_view name) {
  return global_registry().counter(name);
}

/// Shorthand: obs::histogram("comm.alltoallv.call_ns").record(ns);
/// The lookup takes the registry mutex — fine once per phase, not per
/// loop iteration (use CachedHistogram in hot loops).
inline Histogram& histogram(std::string_view name) {
  return global_registry().histogram(name);
}

/// Shorthand: obs::gauge("epoch.current").set(i);
inline Gauge& gauge(std::string_view name) {
  return global_registry().gauge(name);
}

/// Cached handle for a hot-path counter. obs::counter() takes the registry
/// mutex on every lookup; a CachedCounter resolves the name once per
/// registry and then bumps the atomic directly — the steady-state cost is
/// two relaxed loads plus the increment. Handles are safe to share across
/// threads and survive ScopedRegistry swaps: each Registry has a unique
/// id, and a mismatch triggers re-resolution (so a stale handle never
/// touches a destroyed registry's storage).
///
///   static obs::CachedCounter moves("refine.moves");  // function-local
///   moves += n;                                       // hot loop
class CachedCounter {
 public:
  explicit CachedCounter(std::string name) : name_(std::move(name)) {}
  CachedCounter(const CachedCounter&) = delete;
  CachedCounter& operator=(const CachedCounter&) = delete;

  std::atomic<std::uint64_t>& cell() {
    Registry& reg = global_registry();
    const Entry* e = current_.load(std::memory_order_acquire);
    if (e == nullptr || e->registry_id != reg.id()) e = resolve(reg);
    return *e->cell;
  }

  std::uint64_t operator+=(std::uint64_t n) {
    return cell().fetch_add(n, std::memory_order_relaxed) + n;
  }

 private:
  // An Entry is immutable after publication; stale entries are kept alive
  // (owned_) so concurrent readers never see freed memory.
  struct Entry {
    std::uint64_t registry_id;
    std::atomic<std::uint64_t>* cell;
  };

  const Entry* resolve(Registry& reg);

  std::string name_;
  std::atomic<const Entry*> current_{nullptr};
  std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> owned_;
};

/// Cached handle for a hot-path histogram — the Histogram twin of
/// CachedCounter, with the same registry-swap detection: resolve the name
/// once per registry, then record() is the lock-free metrics.hpp path.
///
///   static obs::CachedHistogram gains("fm.move_gain");  // function-local
///   gains.record(gain);                                 // hot loop
class CachedHistogram {
 public:
  explicit CachedHistogram(std::string name) : name_(std::move(name)) {}
  CachedHistogram(const CachedHistogram&) = delete;
  CachedHistogram& operator=(const CachedHistogram&) = delete;

  Histogram& get() {
    Registry& reg = global_registry();
    const Entry* e = current_.load(std::memory_order_acquire);
    if (e == nullptr || e->registry_id != reg.id()) e = resolve(reg);
    return *e->hist;
  }

  void record(std::int64_t value) { get().record(value); }

 private:
  // Same publication discipline as CachedCounter: entries are immutable
  // after publication and stale ones stay alive in owned_.
  struct Entry {
    std::uint64_t registry_id;
    Histogram* hist;
  };

  const Entry* resolve(Registry& reg);

  std::string name_;
  std::atomic<const Entry*> current_{nullptr};
  std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> owned_;
};

/// RAII phase timer. Nest freely; same-named siblings merge. When event
/// capture is on (events.hpp), also emits begin/end timeline events.
class TraceScope {
 public:
  explicit TraceScope(std::string_view name, Registry* reg = nullptr)
      : reg_(reg != nullptr ? reg : &global_registry()) {
    reg_->begin_phase(name);
    if (events_enabled()) {
      event_name_ = intern_event_name(name);
      emit_begin(event_name_);
    }
  }
  ~TraceScope() {
    reg_->end_phase(timer_.seconds());
    if (event_name_ != nullptr) emit_end(event_name_);
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  Registry* reg_;
  const char* event_name_ = nullptr;
  WallTimer timer_;
};

/// Append a JSON-escaped copy of `s` to `out` (shared by the trace and
/// bench JSON writers).
void json_escape(std::string& out, std::string_view s);

/// Serialize phases + counters + histograms + gauges as JSON (schema
/// "hgr-trace-v2"; v1 lacked the "histograms"/"gauges" keys).
std::string trace_to_json(const Registry& reg);
std::string trace_to_json();  // global registry

/// Write trace_to_json(reg) to `path`. Returns false on I/O failure.
bool write_trace_json(const std::string& path, const Registry& reg);
bool write_trace_json(const std::string& path);  // global registry

}  // namespace hgr::obs
