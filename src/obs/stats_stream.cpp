#include "obs/stats_stream.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <fstream>
#include <mutex>
#include <utility>

#include "obs/trace.hpp"

namespace hgr::obs {

namespace {

struct StreamState {
  std::mutex mutex;
  std::deque<StatsSnapshot> ring;
  std::size_t capacity = 256;
  std::uint64_t next_seq = 0;
  std::uint64_t dropped = 0;
  std::uint64_t t0_ns = 0;
  std::string dump_path;
};

StreamState& stream_state() {
  static StreamState state;
  return state;
}

std::atomic<bool> g_enabled{false};
std::atomic<bool> g_dump_pending{false};

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::string StatsSnapshot::to_json() const {
  std::string out = "{\"schema\":\"hgr-stats-v1\",";
  char buf[160];
  std::snprintf(buf, sizeof(buf), "\"seq\":%llu,\"ts_ns\":%llu,\"phase\":\"",
                static_cast<unsigned long long>(seq),
                static_cast<unsigned long long>(ts_ns));
  out += buf;
  json_escape(out, phase);
  std::snprintf(buf, sizeof(buf), "\",\"seconds\":%.9g,\"counters\":{",
                seconds);
  out += buf;
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    json_escape(out, name);
    std::snprintf(buf, sizeof(buf), "\":%llu",
                  static_cast<unsigned long long>(value));
    out += buf;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out += ',';
    first = false;
    out += '"';
    json_escape(out, name);
    std::snprintf(buf, sizeof(buf), "\":%lld", static_cast<long long>(value));
    out += buf;
  }
  out += "}}";
  return out;
}

void set_stats_stream_enabled(bool on) {
  {
    StreamState& state = stream_state();
    std::lock_guard lock(state.mutex);
    if (on && !g_enabled.load(std::memory_order_relaxed))
      state.t0_ns = now_ns();
    g_enabled.store(on, std::memory_order_release);
  }
  // Closing the stream services any dump still pending: a SIGUSR1 that
  // arrived while the process idled between phases (the common daemon
  // state) must not be dropped on exit. Outside the lock —
  // flush_pending_stats_dump takes it again.
  if (!on) flush_pending_stats_dump();
}

bool stats_stream_enabled() {
  return g_enabled.load(std::memory_order_acquire);
}

void set_stats_ring_capacity(std::size_t n) {
  StreamState& state = stream_state();
  std::lock_guard lock(state.mutex);
  state.capacity = n == 0 ? 1 : n;
  while (state.ring.size() > state.capacity) {
    state.ring.pop_front();
    ++state.dropped;
  }
}

void set_stats_stream_path(std::string path) {
  StreamState& state = stream_state();
  std::lock_guard lock(state.mutex);
  state.dump_path = std::move(path);
}

void stats_stream_on_phase_close(Registry& reg, const std::string& phase,
                                 double seconds) {
  if (!stats_stream_enabled()) return;
  // Snapshot the registry before taking the stream mutex (independent
  // locks; keeps the ordering trivially acyclic).
  StatsSnapshot sample;
  sample.phase = phase;
  sample.seconds = seconds;
  sample.counters = reg.counters();
  sample.gauges = reg.gauges();
  std::string flush_to;
  {
    StreamState& state = stream_state();
    std::lock_guard lock(state.mutex);
    sample.seq = state.next_seq++;
    sample.ts_ns = now_ns() - state.t0_ns;
    state.ring.push_back(std::move(sample));
    while (state.ring.size() > state.capacity) {
      state.ring.pop_front();
      ++state.dropped;
    }
    if (g_dump_pending.load(std::memory_order_acquire) &&
        !state.dump_path.empty()) {
      g_dump_pending.store(false, std::memory_order_release);
      flush_to = state.dump_path;
    }
  }
  if (!flush_to.empty()) write_stats_stream(flush_to);
}

std::vector<StatsSnapshot> stats_stream_snapshot() {
  StreamState& state = stream_state();
  std::lock_guard lock(state.mutex);
  return {state.ring.begin(), state.ring.end()};
}

std::uint64_t stats_stream_dropped() {
  StreamState& state = stream_state();
  std::lock_guard lock(state.mutex);
  return state.dropped;
}

void reset_stats_stream() {
  StreamState& state = stream_state();
  std::lock_guard lock(state.mutex);
  state.ring.clear();
  state.next_seq = 0;
  state.dropped = 0;
  state.t0_ns = now_ns();
  g_dump_pending.store(false, std::memory_order_release);
}

void request_stats_dump() {
  // Async-signal-safe by design: one atomic store, no locks, no
  // allocation. The actual write happens at the next sample point.
  g_dump_pending.store(true, std::memory_order_release);
}

bool stats_dump_pending() {
  return g_dump_pending.load(std::memory_order_acquire);
}

bool flush_pending_stats_dump() {
  if (!g_dump_pending.load(std::memory_order_acquire)) return false;
  std::string flush_to;
  {
    StreamState& state = stream_state();
    std::lock_guard lock(state.mutex);
    if (!g_dump_pending.load(std::memory_order_acquire) ||
        state.dump_path.empty())
      return false;
    g_dump_pending.store(false, std::memory_order_release);
    flush_to = state.dump_path;
  }
  // write_stats_stream re-takes the stream mutex to snapshot the ring, so
  // the call must sit outside the locked section above.
  return write_stats_stream(flush_to);
}

bool write_stats_stream(const std::string& path) {
  const std::vector<StatsSnapshot> samples = stats_stream_snapshot();
  std::ofstream out(path);
  if (!out) return false;
  for (const StatsSnapshot& s : samples) out << s.to_json() << '\n';
  return static_cast<bool>(out);
}

}  // namespace hgr::obs
