// Per-rank event timeline: the second half of the observability layer.
//
// The phase tree (trace.hpp) aggregates wall time; it answers "where did
// the run spend its time" but not "what did rank 3 do while rank 0 was
// refining". This module records *events* — begin/end spans and instants —
// into lock-free per-thread ring buffers with rank and thread attribution,
// and exports them as Chrome/Perfetto trace JSON (`chrome://tracing`,
// https://ui.perfetto.dev). That is what makes per-rank skew and comm wait
// time visible: one timeline track per rank, comm events on each.
//
// Design constraints:
//  - Recording must be cheap enough to leave compiled in: a disabled-check
//    is one relaxed atomic load; an enabled emit is a handful of relaxed
//    atomic stores into a thread-owned slot. No locks on the hot path (a
//    mutex is taken once per thread per capture to register its buffer).
//  - Buffers are bounded rings: when a thread emits more than the capacity,
//    the oldest events are overwritten and counted as dropped.
//  - Reads (snapshot/export) may run concurrently with writers. Every slot
//    field is an atomic and carries a stamp; a slot whose stamp does not
//    match the expected event index is being overwritten and is skipped.
//    Torn slots are therefore filtered, never invented.
//  - Event names are interned `const char*`s so slots stay POD-sized.
//
// Rank attribution: the comm runtime calls set_thread_rank(r) on each rank
// thread; events carry that rank and the exporter groups them into one
// timeline track per rank (non-rank threads get their own tracks).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hgr::obs {

enum class EventType : std::uint8_t { kBegin = 0, kEnd = 1, kInstant = 2 };

/// Sentinel for "no payload" on an event.
inline constexpr std::uint64_t kNoEventArg = ~std::uint64_t{0};

struct Event {
  const char* name = nullptr;      // interned; stable for process lifetime
  const char* category = nullptr;  // "phase", "comm", ...
  std::uint64_t ts_ns = 0;         // nanoseconds since the capture epoch
  std::uint64_t arg = kNoEventArg; // optional payload (e.g. message bytes)
  EventType type = EventType::kInstant;
  int rank = -1;                   // -1: not a rank thread
  std::uint32_t tid = 0;           // stable per-thread id within the capture
};

/// Global capture switch. Off by default; emit calls are near-free when
/// off. Enabling (re)starts the capture clock if it was never started.
bool events_enabled();
void set_events_enabled(bool on);

/// Rank attribution for the calling thread (-1 clears). Cheap; the comm
/// runtime calls this unconditionally on every rank thread.
void set_thread_rank(int rank);
int thread_rank();

/// Intern `name` into stable storage; returns a pointer usable as an event
/// name for the rest of the process. Takes a lock — intern once, not per
/// event.
const char* intern_event_name(std::string_view name);

/// Record one event on the calling thread's ring buffer. `name` and
/// `category` must be string literals or interned pointers. No-op when
/// capture is disabled.
void emit_event(const char* name, const char* category, EventType type,
                std::uint64_t arg = kNoEventArg);

inline void emit_begin(const char* name, const char* category = "phase") {
  emit_event(name, category, EventType::kBegin);
}
inline void emit_end(const char* name, const char* category = "phase") {
  emit_event(name, category, EventType::kEnd);
}
inline void emit_instant(const char* name, const char* category = "phase",
                         std::uint64_t arg = kNoEventArg) {
  emit_event(name, category, EventType::kInstant, arg);
}

/// RAII begin/end span. Does not touch the phase tree; use it where a
/// TraceScope would distort aggregate timings (e.g. per-rank duplicates of
/// a phase) or where only the timeline matters.
class EventSpan {
 public:
  explicit EventSpan(const char* name, const char* category = "phase")
      : name_(events_enabled() ? name : nullptr), category_(category) {
    if (name_ != nullptr) emit_event(name_, category_, EventType::kBegin);
  }
  ~EventSpan() {
    if (name_ != nullptr) emit_event(name_, category_, EventType::kEnd);
  }
  EventSpan(const EventSpan&) = delete;
  EventSpan& operator=(const EventSpan&) = delete;

 private:
  const char* name_;
  const char* category_;
};

struct EventsSnapshot {
  /// Concatenation of the live per-thread buffers, each in emission order.
  std::vector<Event> events;
  /// Events overwritten by ring wraparound (plus any torn slots skipped).
  std::uint64_t dropped = 0;
};

/// Copy out everything currently captured. Safe while writers are active;
/// slots raced by a concurrent wrap are skipped, not torn.
EventsSnapshot snapshot_events();

/// Discard all captured events and detach every thread buffer (threads
/// re-register on their next emit). Does not change the enabled flag.
void reset_events();

/// Nanoseconds since the capture epoch (the first enable), monotonic.
std::uint64_t event_clock_ns();

/// Per-thread ring capacity for buffers created after this call; rounded
/// up to a power of two. Intended for tests (small rings force wraparound).
void set_event_ring_capacity(std::size_t capacity);

/// Serialize the capture in Chrome trace-event format: an object with a
/// "traceEvents" array, loadable in Perfetto / chrome://tracing. One track
/// (tid) per rank, named "rank N"; non-rank threads get "thread N" tracks.
std::string chrome_trace_json();

/// Write chrome_trace_json() to `path`. Returns false on I/O failure.
bool write_chrome_trace(const std::string& path);

}  // namespace hgr::obs
