// Cross-rank critical-path attribution for epochs.
//
// The merged phase tree says how much total time every rank spent in
// coarsen/initial/refine, but an epoch's wall time is set by its slowest
// rank — the critical path — and the tree cannot name it. This module
// tags each epoch's repartition with a *span id* (allocated by rank 0 and
// propagated to the other ranks through the comm exchange window, exactly
// like any other broadcast payload), lets every rank record its per-phase
// compute time and blocked time against that span, and derives the
// attribution the paper's load-balancing story needs: "epoch 7 was bounded
// by rank 3's coarsen, 41% of which was wait".
//
// Exported three ways:
//   - the "critical_path" section of the hgr-trace-v2 JSON (all retained
//     spans, per-rank per-phase breakdown + derived summary), rendered by
//     tools/critical_path.py;
//   - latest_critical_path(), consumed by the epoch driver and hgr_cli to
//     fill the epoch CSV's critical_rank / wait_frac columns;
//   - the serial tiers record a one-rank span so the CSV columns stay
//     populated when no communicator exists (rank 0, zero wait).
//
// All calls are phase-granularity (a handful per epoch), so a plain
// mutex-protected store is the right cost point.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hgr::obs {

/// One rank's time in one phase of a span: `seconds` of wall time, of
/// which `wait_seconds` were spent blocked in the comm layer.
struct RankPhaseSample {
  int rank = 0;
  std::string phase;
  double seconds = 0.0;
  double wait_seconds = 0.0;
};

/// Derived per-span attribution (valid == false when no span exists yet).
struct CriticalPathSummary {
  std::uint64_t span_id = 0;
  std::int64_t epoch = -1;       // set_current_epoch value at span begin
  int critical_rank = -1;        // rank with the largest total seconds
  std::string critical_phase;    // that rank's largest phase
  double critical_seconds = 0.0; // that rank's total seconds
  double wait_frac = 0.0;        // blocked fraction of the critical rank
  bool valid = false;
};

/// Tag subsequent spans with the driver's epoch index (-1 = none). The
/// epoch driver sets this per epoch; hgr_cli sets it for its single
/// decision. Process-global (epochs are sequential by construction).
void set_current_epoch(std::int64_t epoch);
std::int64_t current_epoch();

/// Allocate a span for the current epoch. Returns the span id; rank 0
/// calls this and broadcasts the id through the comm window so every rank
/// records against the same span.
std::uint64_t begin_epoch_span();

/// Record one rank's phase interval against `span_id`. Unknown ids are
/// ignored (a stale id can outlive a reset between runs).
void record_rank_phase(std::uint64_t span_id, int rank,
                       std::string_view phase, double seconds,
                       double wait_seconds);

/// Close the span: derive the critical rank/phase and wait fraction and
/// republish the "critical_path" section of the global registry. Call
/// after every rank's records are in (post-join or post-barrier).
void end_epoch_span(std::uint64_t span_id);

/// Summary of the most recently *ended* span.
CriticalPathSummary latest_critical_path();

/// The "critical_path" section JSON: {"spans":[...]} with per-rank
/// breakdowns and derived summaries, oldest span first.
std::string critical_path_to_json();

/// Drop all spans and reset the id counter effect on retention (ids keep
/// increasing; they are process-unique).
void reset_critical_path();

}  // namespace hgr::obs
