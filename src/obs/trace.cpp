#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/assert.hpp"
#include "obs/stats_stream.hpp"

namespace hgr::obs {

namespace {

std::atomic<Registry*> g_override{nullptr};

std::uint64_t next_registry_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void phase_to_json(std::string& out, const PhaseSnapshot& node) {
  out += "{\"name\":\"";
  json_escape(out, node.name);
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "\",\"seconds\":%.9g,\"calls\":%llu,"
                "\"max_seconds\":%.9g,\"min_seconds\":%.9g",
                node.seconds, static_cast<unsigned long long>(node.calls),
                node.max_seconds, node.min_seconds);
  out += buf;
  if (!node.children.empty()) {
    out += ",\"children\":[";
    for (std::size_t i = 0; i < node.children.size(); ++i) {
      if (i != 0) out += ',';
      phase_to_json(out, node.children[i]);
    }
    out += ']';
  }
  out += '}';
}

}  // namespace

void json_escape(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

Registry::Registry() : id_(next_registry_id()) {}

const CachedCounter::Entry* CachedCounter::resolve(Registry& reg) {
  std::lock_guard lock(mutex_);
  // Re-check under the lock: another thread may have resolved already.
  const Entry* e = current_.load(std::memory_order_acquire);
  if (e != nullptr && e->registry_id == reg.id()) return e;
  auto entry = std::make_unique<Entry>();
  entry->registry_id = reg.id();
  entry->cell = &reg.counter(name_);
  const Entry* published = entry.get();
  owned_.push_back(std::move(entry));
  current_.store(published, std::memory_order_release);
  return published;
}

const CachedHistogram::Entry* CachedHistogram::resolve(Registry& reg) {
  std::lock_guard lock(mutex_);
  // Re-check under the lock: another thread may have resolved already.
  const Entry* e = current_.load(std::memory_order_acquire);
  if (e != nullptr && e->registry_id == reg.id()) return e;
  auto entry = std::make_unique<Entry>();
  entry->registry_id = reg.id();
  entry->hist = &reg.histogram(name_);
  const Entry* published = entry.get();
  owned_.push_back(std::move(entry));
  current_.store(published, std::memory_order_release);
  return published;
}

const PhaseSnapshot* find_phase(const PhaseSnapshot& root,
                                std::initializer_list<std::string_view> path) {
  const PhaseSnapshot* node = &root;
  for (const std::string_view part : path) {
    const PhaseSnapshot* next = nullptr;
    for (const PhaseSnapshot& child : node->children) {
      if (child.name == part) {
        next = &child;
        break;
      }
    }
    if (next == nullptr) return nullptr;
    node = next;
  }
  return node;
}

std::atomic<std::uint64_t>& Registry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  auto cell = std::make_unique<std::atomic<std::uint64_t>>(0);
  std::atomic<std::uint64_t>& ref = *cell;
  counters_.emplace(std::string(name), std::move(cell));
  return ref;
}

std::uint64_t Registry::counter_value(std::string_view name) const {
  std::lock_guard lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->load();
}

std::map<std::string, std::uint64_t> Registry::counters() const {
  std::lock_guard lock(mutex_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, cell] : counters_) out[name] = cell->load();
  return out;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  auto hist = std::make_unique<Histogram>();
  Histogram& ref = *hist;
  histograms_.emplace(std::string(name), std::move(hist));
  return ref;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  auto g = std::make_unique<Gauge>();
  Gauge& ref = *g;
  gauges_.emplace(std::string(name), std::move(g));
  return ref;
}

std::map<std::string, HistogramSnapshot> Registry::histograms() const {
  std::lock_guard lock(mutex_);
  std::map<std::string, HistogramSnapshot> out;
  for (const auto& [name, hist] : histograms_) out[name] = hist->snapshot();
  return out;
}

std::map<std::string, std::int64_t> Registry::gauges() const {
  std::lock_guard lock(mutex_);
  std::map<std::string, std::int64_t> out;
  for (const auto& [name, g] : gauges_) out[name] = g->value();
  return out;
}

Registry::Node* Registry::find_or_add_child(Node& parent,
                                            std::string_view name) {
  for (const auto& child : parent.children)
    if (child->name == name) return child.get();
  auto node = std::make_unique<Node>();
  node->name = std::string(name);
  parent.children.push_back(std::move(node));
  return parent.children.back().get();
}

void Registry::begin_phase(std::string_view name) {
  std::lock_guard lock(mutex_);
  std::vector<Node*>& stack = stacks_[std::this_thread::get_id()];
  Node& parent = stack.empty() ? root_ : *stack.back();
  stack.push_back(find_or_add_child(parent, name));
}

void Registry::end_phase(double seconds) {
  // The name of a closing *top-level* phase (the thread's stack emptied):
  // that boundary is where the live stats stream samples.
  std::string top_level_closed;
  {
    std::lock_guard lock(mutex_);
    std::vector<Node*>& stack = stacks_[std::this_thread::get_id()];
    HGR_ASSERT_MSG(!stack.empty(), "TraceScope end without matching begin");
    Node* node = stack.back();
    stack.pop_back();
    node->seconds += seconds;
    node->max_seconds = std::max(node->max_seconds, seconds);
    node->min_seconds =
        node->calls == 0 ? seconds : std::min(node->min_seconds, seconds);
    ++node->calls;
    if (stack.empty()) top_level_closed = node->name;
  }
  // Sampling re-enters the registry (counters/gauges snapshots), so it
  // must run after the lock is released.
  if (!top_level_closed.empty() && stats_stream_enabled())
    stats_stream_on_phase_close(*this, top_level_closed, seconds);
}

void Registry::set_section(std::string_view name, std::string json) {
  std::lock_guard lock(mutex_);
  sections_[std::string(name)] = std::move(json);
}

std::map<std::string, std::string> Registry::sections() const {
  std::lock_guard lock(mutex_);
  return {sections_.begin(), sections_.end()};
}

PhaseSnapshot Registry::phase_tree() const {
  std::lock_guard lock(mutex_);
  // Iterative deep copy (the tree is shallow; recursion would be fine too,
  // but this keeps the lock-held work simple and allocation-bounded).
  struct Frame {
    const Node* src;
    PhaseSnapshot* dst;
  };
  const auto snapshot_node = [](const Node& n) {
    PhaseSnapshot s;
    s.name = n.name;
    s.seconds = n.seconds;
    s.calls = n.calls;
    s.max_seconds = n.max_seconds;
    s.min_seconds = n.min_seconds;
    return s;
  };
  PhaseSnapshot root = snapshot_node(root_);
  std::vector<Frame> work{{&root_, &root}};
  while (!work.empty()) {
    const Frame f = work.back();
    work.pop_back();
    f.dst->children.reserve(f.src->children.size());
    for (const auto& child : f.src->children) {
      f.dst->children.push_back(snapshot_node(*child));
      work.push_back({child.get(), &f.dst->children.back()});
    }
  }
  return root;
}

void Registry::reset() {
  std::lock_guard lock(mutex_);
  for (const auto& [tid, stack] : stacks_)
    HGR_ASSERT_MSG(stack.empty(), "Registry::reset inside an open TraceScope");
  stacks_.clear();
  root_ = Node{};
  counters_.clear();
  histograms_.clear();
  gauges_.clear();
  sections_.clear();
}

Registry& global_registry() {
  static Registry default_registry;
  Registry* injected = g_override.load(std::memory_order_acquire);
  return injected != nullptr ? *injected : default_registry;
}

Registry* set_global_registry(Registry* r) {
  return g_override.exchange(r, std::memory_order_acq_rel);
}

std::string trace_to_json(const Registry& reg) {
  const PhaseSnapshot root = reg.phase_tree();
  const std::map<std::string, std::uint64_t> counters = reg.counters();
  std::string out = "{\"schema\":\"hgr-trace-v2\",\"phases\":[";
  for (std::size_t i = 0; i < root.children.size(); ++i) {
    if (i != 0) out += ',';
    phase_to_json(out, root.children[i]);
  }
  out += "],\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    json_escape(out, name);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "\":%llu",
                  static_cast<unsigned long long>(value));
    out += buf;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, snap] : reg.histograms()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    json_escape(out, name);
    out += "\":";
    out += snap.to_json();
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : reg.gauges()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    json_escape(out, name);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "\":%lld", static_cast<long long>(value));
    out += buf;
  }
  out += '}';
  for (const auto& [name, json] : reg.sections()) {
    out += ",\"";
    json_escape(out, name);
    out += "\":";
    out += json;
  }
  out += '}';
  return out;
}

std::string trace_to_json() { return trace_to_json(global_registry()); }

bool write_trace_json(const std::string& path, const Registry& reg) {
  std::ofstream out(path);
  if (!out) return false;
  out << trace_to_json(reg) << '\n';
  return static_cast<bool>(out);
}

bool write_trace_json(const std::string& path) {
  return write_trace_json(path, global_registry());
}

}  // namespace hgr::obs
