// Check levels for the invariant-verification subsystem (src/check/).
//
// Kept in its own dependency-free header so configuration structs
// (partition/config.hpp, and anything built on it) can carry the knob
// without pulling in the validators.
#pragma once

#include <string_view>

namespace hgr::check {

/// How much runtime invariant verification to perform.
///   kOff      — no validator runs (default; zero overhead).
///   kCheap    — O(V + k) checks per call site: partition range, fixed
///               vertices respected, ceil-aware balance, weight and
///               fixed-label conservation across contraction.
///   kParanoid — adds O(pins) recomputation: full CSR/transpose structural
///               validation, cut and migration volume recomputed from
///               scratch and cross-checked against the cost model, and
///               projected-partition cut equality across contraction.
enum class CheckLevel { kOff, kCheap, kParanoid };

constexpr bool enabled(CheckLevel level) { return level != CheckLevel::kOff; }
constexpr bool paranoid(CheckLevel level) {
  return level == CheckLevel::kParanoid;
}

const char* to_string(CheckLevel level);

/// Parse "off" / "cheap" / "paranoid". Returns false on anything else.
bool parse_check_level(std::string_view text, CheckLevel& out);

}  // namespace hgr::check
