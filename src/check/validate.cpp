#include "check/validate.hpp"

#include <algorithm>
#include <vector>

#include "common/assert.hpp"
#include "metrics/balance.hpp"
#include "metrics/cut.hpp"
#include "metrics/migration.hpp"

namespace hgr::check {

namespace {

/// From-scratch connectivity-1 cut, deliberately independent of
/// metrics/cut.cpp (a seen-flags sweep per net) so the two implementations
/// cross-check each other.
Weight recompute_cut(const Hypergraph& h, const Partition& p) {
  IdVector<PartId, char> seen(p.k, 0);
  Weight total = 0;
  for (const NetId net : h.nets()) {
    Index lambda = 0;
    const auto pins = h.pins(net);
    for (const VertexId v : pins) {
      char& flag = seen[p[v]];
      if (!flag) {
        flag = 1;
        ++lambda;
      }
    }
    for (const VertexId v : pins) seen[p[v]] = 0;
    if (lambda > 1) total += h.net_cost(net) * (lambda - 1);
  }
  return total;
}

Weight recompute_migration(const Hypergraph& h, const Partition& old_p,
                           const Partition& new_p) {
  Weight moved = 0;
  for (const VertexId v : h.vertices())
    if (old_p[v] != new_p[v]) moved += h.vertex_size(v);
  return moved;
}

}  // namespace

void validate_hypergraph(const Hypergraph& h, CheckLevel level,
                         Index num_parts) {
  if (!enabled(level)) return;

  const auto n = static_cast<std::size_t>(h.num_vertices());
  HGR_ASSERT_FMT(h.num_vertices() >= 0 && h.num_nets() >= 0,
                 "negative extents |V|=%d |N|=%d", h.num_vertices(),
                 h.num_nets());
  Index pin_total = 0;
  for (const NetId net : h.nets()) {
    HGR_ASSERT_FMT(h.net_size(net) >= 0, "net %d has negative size %d", net.v,
                   h.net_size(net));
    HGR_ASSERT_FMT(h.net_cost(net) >= 0, "net %d has negative cost %lld",
                   net.v, static_cast<long long>(h.net_cost(net)));
    pin_total += h.net_size(net);
  }
  HGR_ASSERT_FMT(pin_total == h.num_pins(),
                 "net sizes sum to %d but num_pins()=%d", pin_total,
                 h.num_pins());
  Weight weight_total = 0;
  for (const VertexId v : h.vertices()) {
    HGR_ASSERT_FMT(h.vertex_weight(v) >= 0, "vertex %d has weight %lld", v.v,
                   static_cast<long long>(h.vertex_weight(v)));
    HGR_ASSERT_FMT(h.vertex_size(v) >= 0, "vertex %d has size %lld", v.v,
                   static_cast<long long>(h.vertex_size(v)));
    weight_total += h.vertex_weight(v);
  }
  HGR_ASSERT_FMT(weight_total == h.total_vertex_weight(),
                 "vertex weights sum to %lld but total_vertex_weight()=%lld",
                 static_cast<long long>(weight_total),
                 static_cast<long long>(h.total_vertex_weight()));
  if (h.has_fixed()) {
    HGR_ASSERT_FMT(h.fixed_parts().size() == n,
                   "fixed array has %zu entries for %zu vertices",
                   h.fixed_parts().size(), n);
    if (num_parts >= 0) {
      for (const VertexId v : h.vertices())
        HGR_ASSERT_FMT(
            h.fixed_part(v) >= kNoPart && h.fixed_part(v).v < num_parts,
            "vertex %d fixed to part %d, valid range is [-1, %d)", v.v,
            h.fixed_part(v).v, num_parts);
    }
  }

  if (!paranoid(level)) return;

  // Pins in range, no duplicates, and the transpose an exact mirror: count
  // each vertex's appearances in pin lists and match against its incident
  // list, then verify every incident net really contains the vertex.
  IdVector<VertexId, Index> appearances(h.num_vertices(), 0);
  for (const NetId net : h.nets()) {
    const auto pins = h.pins(net);
    for (const VertexId v : pins) {
      HGR_ASSERT_FMT(v.v >= 0 && v.v < h.num_vertices(),
                     "net %d has out-of-range pin %d (|V|=%d)", net.v, v.v,
                     h.num_vertices());
      ++appearances[v];
    }
    for (std::size_t i = 0; i < pins.size(); ++i)
      for (std::size_t j = i + 1; j < pins.size(); ++j)
        HGR_ASSERT_FMT(pins[i] != pins[j], "net %d repeats pin %d", net.v,
                       pins[i].v);
  }
  for (const VertexId v : h.vertices()) {
    HGR_ASSERT_FMT(h.vertex_degree(v) == appearances[v],
                   "vertex %d: transpose degree %d but %d pin appearances",
                   v.v, h.vertex_degree(v), appearances[v]);
    for (const NetId net : h.incident_nets(v)) {
      HGR_ASSERT_FMT(net.v >= 0 && net.v < h.num_nets(),
                     "vertex %d lists out-of-range net %d", v.v, net.v);
      const auto pins = h.pins(net);
      HGR_ASSERT_FMT(std::find(pins.begin(), pins.end(), v) != pins.end(),
                     "vertex %d lists net %d which does not pin it", v.v,
                     net.v);
    }
  }
}

void validate_partition(const Hypergraph& h, const Partition& p,
                        CheckLevel level,
                        const PartitionExpectations& expect) {
  if (!enabled(level)) return;
  const char* ctx = expect.context;

  HGR_ASSERT_FMT(p.k >= 1, "[%s] partition has k=%d", ctx, p.k);
  HGR_ASSERT_FMT(p.num_vertices() == h.num_vertices(),
                 "[%s] partition covers %d vertices, hypergraph has %d", ctx,
                 p.num_vertices(), h.num_vertices());
  for (const VertexId v : h.vertices())
    HGR_ASSERT_FMT(p[v].v >= 0 && p[v].v < p.k,
                   "[%s] vertex %d assigned to part %d, valid range [0, %d)",
                   ctx, v.v, p[v].v, p.k);

  if (h.has_fixed()) {
    for (const VertexId v : h.vertices()) {
      const PartId f = h.fixed_part(v);
      HGR_ASSERT_FMT(f == kNoPart || p[v] == f,
                     "[%s] vertex %d fixed to part %d but assigned to %d",
                     ctx, v.v, f.v, p[v].v);
    }
  }
  if (expect.old_partition != nullptr) {
    const Partition& old_p = *expect.old_partition;
    HGR_ASSERT_FMT(old_p.num_vertices() == h.num_vertices(),
                   "[%s] old partition covers %d vertices, hypergraph has %d",
                   ctx, old_p.num_vertices(), h.num_vertices());
    HGR_ASSERT_FMT(old_p.k == p.k, "[%s] old partition k=%d, new k=%d", ctx,
                   old_p.k, p.k);
  }

  if (expect.epsilon >= 0.0 && h.num_vertices() > 0) {
    // The Eq. 1 bound, enforced up to vertex granularity: a move-based
    // refiner cannot split vertices, so on lumpy weights the provable
    // guarantee is bound + (heaviest vertex - 1). For unit weights the
    // allowance vanishes and the bound is exact. Parts whose *fixed*
    // vertices alone exceed even that are exempt: no assignment can help.
    const Weight bound =
        max_part_weight(h.total_vertex_weight(), p.k, expect.epsilon);
    Weight heaviest = 0;
    for (const VertexId v : h.vertices())
      heaviest = std::max(heaviest, h.vertex_weight(v));
    const Weight limit = bound + std::max<Weight>(heaviest, 1) - 1;
    IdVector<PartId, Weight> fixed_w(p.k, 0);
    if (h.has_fixed()) {
      for (const VertexId v : h.vertices())
        if (h.fixed_part(v) != kNoPart)
          fixed_w[h.fixed_part(v)] += h.vertex_weight(v);
    }
    const IdVector<PartId, Weight> weights =
        part_weights(h.vertex_weights(), p);
    for (const PartId q : p.parts()) {
      if (h.has_fixed() && fixed_w[q] > limit) continue;
      HGR_ASSERT_FMT(
          weights[q] <= limit,
          "[%s] part %d weighs %lld, balance bound is %lld (+%lld vertex "
          "granularity, eps=%.4f)",
          ctx, q.v, static_cast<long long>(weights[q]),
          static_cast<long long>(bound),
          static_cast<long long>(limit - bound), expect.epsilon);
    }
  }

  if (!paranoid(level)) return;

  const Weight recomputed = recompute_cut(h, p);
  const Weight model_cut = connectivity_cut(h, p);
  HGR_ASSERT_FMT(recomputed == model_cut,
                 "[%s] independent cut recomputation %lld disagrees with "
                 "metrics/cut %lld",
                 ctx, static_cast<long long>(recomputed),
                 static_cast<long long>(model_cut));
  if (expect.reported_cut >= 0)
    HGR_ASSERT_FMT(recomputed == expect.reported_cut,
                   "[%s] reported cut %lld but recomputation gives %lld", ctx,
                   static_cast<long long>(expect.reported_cut),
                   static_cast<long long>(recomputed));
  if (expect.old_partition != nullptr) {
    const Weight moved = recompute_migration(h, *expect.old_partition, p);
    const Weight model_moved =
        migration_volume(h.vertex_sizes(), *expect.old_partition, p);
    HGR_ASSERT_FMT(moved == model_moved,
                   "[%s] independent migration recomputation %lld disagrees "
                   "with metrics/migration %lld",
                   ctx, static_cast<long long>(moved),
                   static_cast<long long>(model_moved));
    if (expect.reported_migration >= 0)
      HGR_ASSERT_FMT(
          moved == expect.reported_migration,
          "[%s] reported migration volume %lld but recomputation gives %lld",
          ctx, static_cast<long long>(expect.reported_migration),
          static_cast<long long>(moved));
  }
}

void validate_coarsening(const Hypergraph& fine, const CoarseLevel& level_data,
                         CheckLevel level,
                         const Partition* coarse_partition) {
  if (!enabled(level)) return;
  const Hypergraph& coarse = level_data.coarse;
  const IdVector<VertexId, VertexId>& map = level_data.fine_to_coarse;

  HGR_ASSERT_FMT(map.ssize() == fine.num_vertices(),
                 "fine_to_coarse has %zu entries for %d fine vertices",
                 map.size(), fine.num_vertices());
  IdVector<VertexId, char> hit(coarse.num_vertices(), 0);
  for (const VertexId v : fine.vertices()) {
    const VertexId c = map[v];
    HGR_ASSERT_FMT(c.v >= 0 && c.v < coarse.num_vertices(),
                   "fine vertex %d maps to coarse %d (|coarse V|=%d)", v.v,
                   c.v, coarse.num_vertices());
    hit[c] = 1;
  }
  for (const VertexId c : coarse.vertices())
    HGR_ASSERT_FMT(hit[c], "coarse vertex %d has no fine preimage", c.v);

  HGR_ASSERT_FMT(
      fine.total_vertex_weight() == coarse.total_vertex_weight(),
      "contraction changed total vertex weight %lld -> %lld",
      static_cast<long long>(fine.total_vertex_weight()),
      static_cast<long long>(coarse.total_vertex_weight()));
  Weight fine_size = 0, coarse_size = 0;
  for (const VertexId v : fine.vertices()) fine_size += fine.vertex_size(v);
  for (const VertexId c : coarse.vertices())
    coarse_size += coarse.vertex_size(c);
  HGR_ASSERT_FMT(fine_size == coarse_size,
                 "contraction changed total vertex size %lld -> %lld",
                 static_cast<long long>(fine_size),
                 static_cast<long long>(coarse_size));

  // Fixed labels conserved: each fixed fine vertex's image carries the same
  // label, and no coarse label lacks a fine justification.
  if (fine.has_fixed()) {
    for (const VertexId v : fine.vertices()) {
      const PartId f = fine.fixed_part(v);
      if (f == kNoPart) continue;
      const VertexId c = map[v];
      HGR_ASSERT_FMT(coarse.fixed_part(c) == f,
                     "fine vertex %d fixed to %d but coarse vertex %d fixed "
                     "to %d",
                     v.v, f.v, c.v, coarse.fixed_part(c).v);
    }
  }
  if (coarse.has_fixed()) {
    IdVector<VertexId, char> justified(coarse.num_vertices(), 0);
    for (const VertexId v : fine.vertices())
      if (fine.fixed_part(v) != kNoPart) justified[map[v]] = 1;
    for (const VertexId c : coarse.vertices())
      HGR_ASSERT_FMT(coarse.fixed_part(c) == kNoPart || justified[c],
                     "coarse vertex %d fixed to %d without any fixed fine "
                     "preimage",
                     c.v, coarse.fixed_part(c).v);
  }

  if (!paranoid(level) || coarse_partition == nullptr) return;

  const Partition& cp = *coarse_partition;
  HGR_ASSERT_FMT(cp.num_vertices() == coarse.num_vertices(),
                 "coarse partition covers %d vertices, coarse hypergraph "
                 "has %d",
                 cp.num_vertices(), coarse.num_vertices());
  Partition projected(cp.k, fine.num_vertices());
  for (const VertexId v : fine.vertices()) projected[v] = cp[map[v]];
  const Weight fine_cut = recompute_cut(fine, projected);
  const Weight coarse_cut = recompute_cut(coarse, cp);
  HGR_ASSERT_FMT(fine_cut == coarse_cut,
                 "projected fine cut %lld != coarse cut %lld",
                 static_cast<long long>(fine_cut),
                 static_cast<long long>(coarse_cut));
}

}  // namespace hgr::check
