#include "check/check_level.hpp"

namespace hgr::check {

const char* to_string(CheckLevel level) {
  switch (level) {
    case CheckLevel::kOff:
      return "off";
    case CheckLevel::kCheap:
      return "cheap";
    case CheckLevel::kParanoid:
      return "paranoid";
  }
  return "unknown";
}

bool parse_check_level(std::string_view text, CheckLevel& out) {
  if (text == "off") {
    out = CheckLevel::kOff;
  } else if (text == "cheap") {
    out = CheckLevel::kCheap;
  } else if (text == "paranoid") {
    out = CheckLevel::kParanoid;
  } else {
    return false;
  }
  return true;
}

}  // namespace hgr::check
