// Runtime invariant validators (docs/CHECKING.md).
//
// Repartitioning is a silently-wrong-output domain: a buggy algorithm still
// prints a partition, it is just unbalanced, fixed-vertex-violating, or
// costed wrong. These validators recompute the invariants each pipeline
// stage is supposed to preserve and cross-check them against what the stage
// reported, gated by CheckLevel so production runs pay nothing.
//
// Failures are routed through the pluggable assertion handler in
// common/assert.hpp: the default prints a diagnostic (with operand values)
// and aborts; tests install ScopedAssertHandler and catch AssertionError.
#pragma once

#include "check/check_level.hpp"
#include "hypergraph/hypergraph.hpp"
#include "metrics/partition.hpp"
#include "partition/contract.hpp"

namespace hgr::check {

/// Structural invariants of the hypergraph itself.
///   cheap:    CSR offset arrays sized and monotone, pin/offset totals
///             agree, non-negative weights/sizes/costs, fixed parts in
///             [kNoPart, num_parts) when num_parts >= 0.
///   paranoid: adds pins in range with no duplicate pin within a net, and
///             the vertex->nets transpose an exact mirror of the net->pins
///             CSR (same multiset of incidences, both directions).
void validate_hypergraph(const Hypergraph& h, CheckLevel level,
                         Index num_parts = -1);

/// Optional cross-checks for validate_partition. Negative sentinel values
/// (and a null old_partition) mean "not provided, skip that check".
struct PartitionExpectations {
  /// Eq. 1 balance tolerance; >= 0 enforces the ceil-aware bound
  /// metrics/balance max_part_weight() up to vertex granularity (the
  /// provable guarantee of a move-based refiner is bound + heaviest
  /// vertex - 1; exact for unit weights). Parts whose fixed vertices
  /// alone exceed even that are exempt: no assignment can fix them.
  double epsilon = -1.0;

  /// Connectivity-1 cut the caller reported; cross-checked against a
  /// from-scratch recomputation at paranoid level.
  Weight reported_cut = -1;

  /// Previous assignment; enables the fixed == old-part sanity check the
  /// repartitioning model relies on and the migration cross-check.
  const Partition* old_partition = nullptr;

  /// Migration volume the caller reported (requires old_partition);
  /// cross-checked against a from-scratch recomputation at paranoid level.
  Weight reported_migration = -1;

  /// Phase name included in failure diagnostics.
  const char* context = "";
};

/// Partition invariants.
///   cheap:    one assignment per vertex, every part id in [0, k), fixed
///             vertices on their fixed part, balance bound (see above).
///   paranoid: adds cut recomputed from scratch (independent per-net
///             connectivity count) cross-checked against metrics/cut and
///             expect.reported_cut, and migration volume recomputed and
///             cross-checked against expect.reported_migration.
void validate_partition(const Hypergraph& h, const Partition& p,
                        CheckLevel level,
                        const PartitionExpectations& expect = {});

/// Conservation across one contraction step (fine -> level_data.coarse).
///   cheap:    fine_to_coarse total and in range, every coarse vertex hit,
///             total vertex weight and total vertex size conserved, fixed
///             labels conserved (each fine fixed vertex's coarse image
///             carries the same label; no label appears from nowhere).
///   paranoid: with coarse_partition given, the projected fine partition's
///             connectivity-1 cut equals the coarse cut — exact for this
///             contraction because dropped nets are single-pin (uncuttable)
///             and merged nets keep summed costs at equal connectivity.
void validate_coarsening(const Hypergraph& fine, const CoarseLevel& level_data,
                         CheckLevel level,
                         const Partition* coarse_partition = nullptr);

}  // namespace hgr::check
