// Fundamental index and weight types used across the hgr library.
//
// The library follows the conventions of the IPDPS'07 repartitioning paper:
// vertices carry a *weight* (computational load) and a *size* (bytes of data
// that must move if the vertex migrates); nets carry a *cost* (bytes
// communicated per iteration when the net is cut).
#pragma once

#include <cstdint>

namespace hgr {

/// Vertex or net index. Signed so that -1 can mean "none" in work arrays.
using Index = std::int32_t;

/// Weights, sizes, costs, and cut values. 64-bit: cut sums over millions of
/// pins times alpha up to 1000 overflow 32 bits easily.
using Weight = std::int64_t;

/// Part identifier. -1 means "unassigned" / "free" depending on context.
using PartId = std::int32_t;

/// Sentinel for "no vertex / no net / no part".
inline constexpr Index kInvalidIndex = -1;
inline constexpr PartId kNoPart = -1;

}  // namespace hgr
