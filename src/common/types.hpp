// Fundamental index, id, and weight types used across the hgr library.
//
// The library follows the conventions of the IPDPS'07 repartitioning paper:
// vertices carry a *weight* (computational load) and a *size* (bytes of data
// that must move if the vertex migrates); nets carry a *cost* (bytes
// communicated per iteration when the net is cut).
//
// Id safety (docs/CHECKING.md, "Static-analysis stack"): the four id spaces
// in flight — vertices, nets, parts, ranks — are distinct StrongId
// instantiations, so passing a net id where a vertex id is expected, or a
// rank where a part is expected, is a compile error instead of a silently
// wrong array lookup. Conventions:
//
//   - `Index` stays a plain 32-bit integer for *counts and positions*
//     (num_vertices(), CSR offsets, loop trip counts, pin slots). An id
//     names an element; an Index measures or locates.
//   - `id.v` is the sanctioned raw accessor for arithmetic that genuinely
//     mixes spaces (flat table indexing like `net.v * k + part.v`, hashing,
//     printing through C APIs).
//   - `to_raw()` / `from_raw()` are the *bulk* conversion points for the
//     comm-buffer and file-IO boundaries, where ids must travel as plain
//     integers. hgr_lint's `raw-escape` rule confines them to those
//     boundaries (tools/hgr_lint.py).
//   - `IdVector<Id, T>` / `IdSpan<Id, T>` are vectors/spans whose subscript
//     only accepts the matching id type, for arrays keyed by an id space
//     (the partition vector, fine->coarse maps, per-part weights).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iterator>
#include <ostream>
#include <span>
#include <type_traits>
#include <vector>

#include "common/assert.hpp"

namespace hgr {

/// Count or position (CSR offsets, sizes, loop bounds). Signed so that -1
/// can mean "none" in work arrays.
using Index = std::int32_t;

/// Weights, sizes, costs, and cut values. 64-bit: cut sums over millions of
/// pins times alpha up to 1000 overflow 32 bits easily.
using Weight = std::int64_t;

/// Sentinel for "no position".
inline constexpr Index kInvalidIndex = -1;

/// A strongly-typed id: a 32-bit integer that names an element of one id
/// space (vertex, net, part, rank) and refuses to mix with the others.
/// Construction from an integer is explicit; `.v` reads the raw value.
template <class Tag>
struct StrongId {
  using Raw = std::int32_t;

  Raw v = -1;

  constexpr StrongId() = default;
  template <class I, std::enable_if_t<std::is_integral_v<I>, int> = 0>
  explicit constexpr StrongId(I raw) : v(static_cast<Raw>(raw)) {}

  /// True iff this id names an element (is not a sentinel).
  constexpr bool valid() const { return v >= 0; }

  friend constexpr bool operator==(StrongId a, StrongId b) = default;
  friend constexpr auto operator<=>(StrongId a, StrongId b) = default;

  constexpr StrongId& operator++() { ++v; return *this; }
  constexpr StrongId operator++(int) { StrongId old = *this; ++v; return old; }
  constexpr StrongId& operator--() { --v; return *this; }
  constexpr StrongId operator--(int) { StrongId old = *this; --v; return old; }

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    return os << id.v;
  }
};

struct VertexTag {};
struct NetTag {};
struct PartTag {};
struct RankTag {};

/// Names a vertex of a hypergraph (a row of the incident-nets CSR).
using VertexId = StrongId<VertexTag>;
/// Names a net (hyperedge) of a hypergraph (a row of the pin CSR).
using NetId = StrongId<NetTag>;
/// Names a part of a partition, in [0, k).
using PartId = StrongId<PartTag>;
/// Names a rank of the (emulated) distributed run, in [0, p).
using RankId = StrongId<RankTag>;

/// Sentinels for "no vertex / no net / no part / no rank".
inline constexpr VertexId kInvalidVertex{-1};
inline constexpr NetId kInvalidNet{-1};
inline constexpr PartId kNoPart{-1};
inline constexpr RankId kNoRank{-1};

// ---------------------------------------------------------------------------
// Raw conversion points (comm-buffer / file-IO boundary).
//
// Scalar and bulk escapes out of (and into) the typed world. hgr_lint's
// `raw-escape` rule keeps calls to these outside the allowlisted boundary
// files from landing; everywhere else, prefer `.v` for per-element access.

template <class Tag>
constexpr typename StrongId<Tag>::Raw to_raw(StrongId<Tag> id) {
  return id.v;
}

template <class Id, class I, std::enable_if_t<std::is_integral_v<I>, int> = 0>
constexpr Id from_raw(I raw) {
  return Id{static_cast<typename Id::Raw>(raw)};
}

/// Reinterpret a span of strong ids as a span of their raw integers (legal:
/// StrongId is standard-layout with a single Raw member). For filling comm
/// buffers without an element-wise copy.
template <class Tag>
inline std::span<const typename StrongId<Tag>::Raw> to_raw(
    std::span<const StrongId<Tag>> ids) {
  static_assert(sizeof(StrongId<Tag>) == sizeof(typename StrongId<Tag>::Raw));
  return {reinterpret_cast<const typename StrongId<Tag>::Raw*>(ids.data()),
          ids.size()};
}

/// Reinterpret a span of raw integers as a span of strong ids: the inverse
/// of the to_raw() span view, for consuming comm buffers without a copy.
template <class Id>
inline std::span<const Id> from_raw_span(
    std::span<const typename Id::Raw> raw) {
  static_assert(sizeof(Id) == sizeof(typename Id::Raw));
  return {reinterpret_cast<const Id*>(raw.data()), raw.size()};
}

/// Element-wise bulk conversion raw integers -> ids (IO boundary).
template <class Id, class I>
inline std::vector<Id> from_raw_vector(const std::vector<I>& raw) {
  std::vector<Id> out;
  out.reserve(raw.size());
  for (const I r : raw) out.push_back(from_raw<Id>(r));
  return out;
}

/// Element-wise bulk conversion ids -> raw integers (IO boundary).
template <class Tag>
inline std::vector<typename StrongId<Tag>::Raw> to_raw_vector(
    const std::vector<StrongId<Tag>>& ids) {
  std::vector<typename StrongId<Tag>::Raw> out;
  out.reserve(ids.size());
  for (const StrongId<Tag> id : ids) out.push_back(id.v);
  return out;
}

// ---------------------------------------------------------------------------
// Id ranges: iterate an id space without touching raw integers.
//
//   for (VertexId v : hg.vertices()) ...
//   for (PartId p : part_range(k)) ...

template <class Id>
class IdRange {
 public:
  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Id;
    using difference_type = std::ptrdiff_t;
    using pointer = const Id*;
    using reference = Id;

    constexpr iterator() = default;
    explicit constexpr iterator(Id at) : at_(at) {}
    constexpr Id operator*() const { return at_; }
    constexpr iterator& operator++() { ++at_; return *this; }
    constexpr iterator operator++(int) { iterator o = *this; ++at_; return o; }
    friend constexpr bool operator==(iterator a, iterator b) = default;

   private:
    Id at_{};
  };

  constexpr IdRange() = default;
  /// The half-open range [0, n).
  explicit constexpr IdRange(Index n) : begin_(Id{0}), end_(Id{n}) {}
  constexpr IdRange(Id begin, Id end) : begin_(begin), end_(end) {}

  constexpr iterator begin() const { return iterator(begin_); }
  constexpr iterator end() const { return iterator(end_); }
  constexpr Index size() const { return end_.v - begin_.v; }
  constexpr bool empty() const { return size() <= 0; }

 private:
  Id begin_{0};
  Id end_{0};
};

/// [PartId{0}, PartId{k}) — the parts of a k-way partition.
inline constexpr IdRange<PartId> part_range(Index k) { return IdRange<PartId>(k); }
/// [VertexId{0}, VertexId{n}).
inline constexpr IdRange<VertexId> vertex_range(Index n) {
  return IdRange<VertexId>(n);
}
/// [NetId{0}, NetId{m}).
inline constexpr IdRange<NetId> net_range(Index m) { return IdRange<NetId>(m); }
/// [RankId{0}, RankId{p}).
inline constexpr IdRange<RankId> rank_range(Index p) {
  return IdRange<RankId>(p);
}

// ---------------------------------------------------------------------------
// Typed containers: arrays keyed by one id space.

/// A std::span whose subscript only accepts the matching id type. T may be
/// const-qualified for read-only views.
template <class Id, class T>
class IdSpan {
 public:
  constexpr IdSpan() = default;
  constexpr IdSpan(std::span<T> s) : span_(s) {}
  constexpr IdSpan(T* data, std::size_t n) : span_(data, n) {}
  /// Views of non-const element spans convert to const-element views.
  template <class U = T,
            std::enable_if_t<std::is_const_v<U>, int> = 0>
  constexpr IdSpan(IdSpan<Id, std::remove_const_t<T>> other)
      : span_(other.raw()) {}

  constexpr T& operator[](Id id) const {
    HGR_DASSERT(id.v >= 0 &&
                static_cast<std::size_t>(id.v) < span_.size());
    return span_[static_cast<std::size_t>(id.v)];
  }

  constexpr std::size_t size() const { return span_.size(); }
  constexpr Index ssize() const { return static_cast<Index>(span_.size()); }
  constexpr bool empty() const { return span_.empty(); }
  constexpr T* data() const { return span_.data(); }
  constexpr auto begin() const { return span_.begin(); }
  constexpr auto end() const { return span_.end(); }
  /// The ids this span is keyed by: [Id{0}, Id{size()}).
  constexpr IdRange<Id> ids() const { return IdRange<Id>(ssize()); }
  /// The typed view of the first n elements (same id space).
  constexpr IdSpan first(Index n) const {
    return IdSpan(span_.first(static_cast<std::size_t>(n)));
  }
  /// Untyped escape (bulk ops, comm boundary) — policed by hgr_lint.
  constexpr std::span<T> raw() const { return span_; }

 private:
  std::span<T> span_;
};

/// A std::vector whose subscript only accepts the matching id type.
template <class Id, class T>
class IdVector {
 public:
  IdVector() = default;
  explicit IdVector(Index n) : data_(static_cast<std::size_t>(n)) {}
  IdVector(Index n, const T& value)
      : data_(static_cast<std::size_t>(n), value) {}
  /// Adopt an untyped vector (IO / comm boundary) — policed by hgr_lint.
  static IdVector adopt_raw(std::vector<T> raw) {
    IdVector out;
    out.data_ = std::move(raw);
    return out;
  }

  // decltype(auto): std::vector<bool> subscripts yield a proxy, not bool&.
  decltype(auto) operator[](Id id) {
    HGR_DASSERT(id.v >= 0 &&
                static_cast<std::size_t>(id.v) < data_.size());
    return data_[static_cast<std::size_t>(id.v)];
  }
  decltype(auto) operator[](Id id) const {
    HGR_DASSERT(id.v >= 0 &&
                static_cast<std::size_t>(id.v) < data_.size());
    return data_[static_cast<std::size_t>(id.v)];
  }

  std::size_t size() const { return data_.size(); }
  Index ssize() const { return static_cast<Index>(data_.size()); }
  bool empty() const { return data_.empty(); }
  void clear() { data_.clear(); }
  void resize(Index n) { data_.resize(static_cast<std::size_t>(n)); }
  void resize(Index n, const T& value) {
    data_.resize(static_cast<std::size_t>(n), value);
  }
  void assign(Index n, const T& value) {
    data_.assign(static_cast<std::size_t>(n), value);
  }
  void reserve(Index n) { data_.reserve(static_cast<std::size_t>(n)); }
  void push_back(const T& value) { data_.push_back(value); }
  void push_back(T&& value) { data_.push_back(std::move(value)); }
  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }
  T& back() { return data_.back(); }
  const T& back() const { return data_.back(); }

  /// The ids this vector is keyed by: [Id{0}, Id{size()}).
  IdRange<Id> ids() const { return IdRange<Id>(ssize()); }

  /// Typed views (implicit, mirroring vector -> span).
  operator IdSpan<Id, T>() { return IdSpan<Id, T>(std::span<T>(data_)); }
  operator IdSpan<Id, const T>() const {
    return IdSpan<Id, const T>(std::span<const T>(data_));
  }
  IdSpan<Id, T> span() { return *this; }
  IdSpan<Id, const T> span() const { return *this; }

  /// Untyped escape (bulk ops, IO, comm boundary) — policed by hgr_lint.
  std::vector<T>& raw() { return data_; }
  const std::vector<T>& raw() const { return data_; }

  friend bool operator==(const IdVector&, const IdVector&) = default;

 private:
  std::vector<T> data_;
};

}  // namespace hgr

template <class Tag>
struct std::hash<hgr::StrongId<Tag>> {
  std::size_t operator()(hgr::StrongId<Tag> id) const noexcept {
    return std::hash<std::int32_t>{}(id.v);
  }
};
