#include "common/thread_pool.hpp"

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>

#include "common/assert.hpp"
#include "obs/trace.hpp"

namespace hgr {

// Region protocol: the caller publishes a job pointer and a generation
// number under the mutex and wakes every worker; each worker runs the job
// once for its own thread index, then decrements `pending`. The caller
// runs index 0 itself, waits for pending == 0, and only then unpublishes
// the job — so the pointer outlives every reader. Exceptions from any
// index are captured (first one wins) and rethrown on the caller after
// the join, which keeps fault-injection unwinds from abandoning workers
// mid-region.
struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable start_cv;
  std::condition_variable done_cv;
  const std::function<void(int)>* job = nullptr;
  std::uint64_t generation = 0;
  int pending = 0;
  std::exception_ptr first_error;
  bool stop = false;
};

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads),
      impl_(std::make_unique<Impl>()) {
  static obs::CachedCounter pools("tp.pools");
  pools += 1;
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int t = 1; t < num_threads_; ++t)
    workers_.emplace_back([this, t] { worker_loop(t); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->start_cv.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop(int t) {
  std::uint64_t seen = 0;
  for (;;) {
    std::unique_lock lock(impl_->mutex);
    impl_->start_cv.wait(lock, [&] {
      return impl_->stop || impl_->generation != seen;
    });
    if (impl_->stop) return;
    seen = impl_->generation;
    const std::function<void(int)>* job = impl_->job;
    lock.unlock();
    try {
      (*job)(t);
    } catch (...) {  // hgr-lint: swallow-ok (run() rethrows after the join)
      std::lock_guard relock(impl_->mutex);
      if (impl_->first_error == nullptr)
        impl_->first_error = std::current_exception();
    }
    std::lock_guard relock(impl_->mutex);
    if (--impl_->pending == 0) impl_->done_cv.notify_all();
  }
}

void ThreadPool::run(const std::function<void(int)>& f) {
  static obs::CachedCounter regions("tp.regions");
  static obs::CachedCounter tasks("tp.tasks");
  regions += 1;
  tasks += static_cast<std::uint64_t>(num_threads_);
  if (num_threads_ == 1) {
    f(0);
    return;
  }
  {
    std::lock_guard lock(impl_->mutex);
    HGR_ASSERT_MSG(impl_->job == nullptr,
                   "ThreadPool::run is not reentrant (nested region?)");
    impl_->job = &f;
    impl_->first_error = nullptr;
    impl_->pending = num_threads_ - 1;
    ++impl_->generation;
  }
  impl_->start_cv.notify_all();
  try {
    f(0);
  } catch (...) {  // hgr-lint: swallow-ok (rethrown below after the join)
    std::lock_guard lock(impl_->mutex);
    if (impl_->first_error == nullptr)
      impl_->first_error = std::current_exception();
  }
  std::unique_lock lock(impl_->mutex);
  impl_->done_cv.wait(lock, [&] { return impl_->pending == 0; });
  impl_->job = nullptr;
  if (impl_->first_error != nullptr) {
    std::exception_ptr err = impl_->first_error;
    impl_->first_error = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::parallel_chunks(
    Index n, const std::function<void(int, Index, Index)>& f) {
  if (n <= 0) return;
  run([&](int t) {
    const auto [begin, end] = chunk(n, t, num_threads_);
    if (begin < end) f(t, begin, end);
  });
}

std::pair<Index, Index> ThreadPool::chunk(Index n, int t, int num_threads) {
  HGR_DASSERT(num_threads >= 1 && t >= 0 && t < num_threads);
  const Index base = n / num_threads;
  const Index extra = n % num_threads;
  const Index begin = static_cast<Index>(t) * base +
                      (static_cast<Index>(t) < extra ? static_cast<Index>(t)
                                                     : extra);
  const Index len = base + (static_cast<Index>(t) < extra ? 1 : 0);
  return {begin, begin + len};
}

}  // namespace hgr
