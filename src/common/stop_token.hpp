// StopToken: a one-shot cooperative cancellation latch with an
// interruptible timed wait.
//
// The degradation policy (core/repartitioner.cpp) sleeps between retry
// attempts; a plain sleep_for would wedge a long-running daemon's shutdown
// for the full backoff. Pointing RepartitionerConfig::stop at a StopToken
// turns every backoff into a condition-variable wait the owner can cut
// short from any thread, and lets in-flight policy loops degrade to the
// cheap keep-old fallback instead of starting further attempts.
//
// The latch is sticky: once request_stop() fires, every current and future
// wait_for() returns true immediately. There is no reset — a Server that
// wants to run again constructs a fresh token.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>

namespace hgr {

class StopToken {
 public:
  StopToken() = default;
  StopToken(const StopToken&) = delete;
  StopToken& operator=(const StopToken&) = delete;

  /// Latch stop and wake every thread blocked in wait_for(). Safe to call
  /// from any thread, any number of times.
  void request_stop() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_.store(true, std::memory_order_release);
    }
    cv_.notify_all();
  }

  bool stop_requested() const { return stop_.load(std::memory_order_acquire); }

  /// Block for up to `seconds` or until request_stop(), whichever comes
  /// first. Returns true when stop was requested (the wait was cut short
  /// or the token was already stopped), false when the full duration
  /// elapsed normally.
  bool wait_for(double seconds) const {
    if (stop_requested()) return true;
    if (seconds <= 0.0) return false;
    std::unique_lock<std::mutex> lock(mutex_);
    return cv_.wait_for(lock, std::chrono::duration<double>(seconds), [this] {
      return stop_.load(std::memory_order_relaxed);
    });
  }

 private:
  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  std::atomic<bool> stop_{false};
};

}  // namespace hgr
