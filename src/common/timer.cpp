#include "common/timer.hpp"

#include <cstdio>

namespace hgr {

std::string format_seconds(double s) {
  char buf[64];
  if (s < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1f us", s * 1e6);
  } else if (s < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f s", s);
  }
  return buf;
}

}  // namespace hgr
