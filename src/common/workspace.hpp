// Workspace: a scratch-vector arena for the multilevel kernels.
//
// Every coarsening level runs the same kernels (matching, contraction,
// refinement) on a smaller hypergraph, and before this arena existed each
// invocation reallocated all of its scratch — score tables, dedup maps,
// gain arrays, permutations — only to free them at level end. A Workspace
// keeps those vectors alive between invocations: take<T>() hands out a
// cleared vector with its old capacity intact, give() returns it. Across a
// multilevel run the steady state is zero scratch allocation per level.
//
// Concurrency: a Workspace is single-threaded by design. The parallel
// partitioner owns one per rank; serial code owns one per partitioner
// call. Kernels accept `Workspace* ws = nullptr` and fall back to plain
// locals through Borrowed, so standalone calls need no arena.
#pragma once

#include <cstdint>
#include <memory>
#include <typeindex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace hgr {

class Workspace {
 public:
  struct Stats {
    std::uint64_t takes = 0;        // total take<T>() calls
    std::uint64_t reuses = 0;       // served from a pooled vector
    std::uint64_t allocations = 0;  // served by a fresh (empty) vector
  };

  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// A cleared vector<T>, reusing pooled capacity when available.
  template <typename T>
  std::vector<T> take() {
    TypedPool<T>& pool = typed_pool<T>();
    ++stats_.takes;
    if (!pool.free.empty()) {
      ++stats_.reuses;
      std::vector<T> v = std::move(pool.free.back());
      pool.free.pop_back();
      v.clear();
      return v;
    }
    ++stats_.allocations;
    return {};
  }

  /// Return a vector to the pool; its capacity is what gets recycled.
  template <typename T>
  void give(std::vector<T>&& v) {
    typed_pool<T>().free.push_back(std::move(v));
  }

  /// Drop every pooled vector (frees all recycled capacity).
  void clear() { pools_.clear(); }

  /// Pooled vectors currently waiting for reuse (over all types).
  std::size_t pooled() const {
    std::size_t total = 0;
    for (const auto& [type, pool] : pools_) total += pool->size();
    return total;
  }

  const Stats& stats() const { return stats_; }

 private:
  struct PoolBase {
    virtual ~PoolBase() = default;
    virtual std::size_t size() const = 0;
  };
  template <typename T>
  struct TypedPool final : PoolBase {
    std::vector<std::vector<T>> free;
    std::size_t size() const override { return free.size(); }
  };

  template <typename T>
  TypedPool<T>& typed_pool() {
    std::unique_ptr<PoolBase>& slot = pools_[std::type_index(typeid(T))];
    if (slot == nullptr) slot = std::make_unique<TypedPool<T>>();
    return static_cast<TypedPool<T>&>(*slot);
  }

  std::unordered_map<std::type_index, std::unique_ptr<PoolBase>> pools_;
  Stats stats_;
};

/// RAII borrow of one scratch vector. With a null workspace it degrades to
/// a plain local vector, so kernels can be called with or without an
/// arena through the same code path.
template <typename T>
class Borrowed {
 public:
  explicit Borrowed(Workspace* ws) : ws_(ws) {
    if (ws_ != nullptr) vec_ = ws_->take<T>();
  }
  ~Borrowed() {
    if (ws_ != nullptr) ws_->give(std::move(vec_));
  }
  Borrowed(const Borrowed&) = delete;
  Borrowed& operator=(const Borrowed&) = delete;

  std::vector<T>& operator*() { return vec_; }
  std::vector<T>* operator->() { return &vec_; }
  const std::vector<T>* operator->() const { return &vec_; }
  std::vector<T>& get() { return vec_; }
  const std::vector<T>& get() const { return vec_; }

  decltype(auto) operator[](std::size_t i) { return vec_[i]; }
  decltype(auto) operator[](std::size_t i) const { return vec_[i]; }

 private:
  Workspace* ws_;
  std::vector<T> vec_;
};

}  // namespace hgr
