// Workspace: a scratch-vector arena for the multilevel kernels.
//
// Every coarsening level runs the same kernels (matching, contraction,
// refinement) on a smaller hypergraph, and before this arena existed each
// invocation reallocated all of its scratch — score tables, dedup maps,
// gain arrays, permutations — only to free them at level end. A Workspace
// keeps those vectors alive between invocations: take<T>() hands out a
// cleared vector with its old capacity intact, give() returns it. Across a
// multilevel run the steady state is zero scratch allocation per level.
//
// Concurrency: one arena serves one thread at a time. The parallel
// partitioner owns one per rank; serial code owns one per partitioner
// call; kernels running thread-parallel sections grab a per-thread
// sub-arena via for_thread(t) (reserve_threads(n) first, from the owning
// thread). The single-owner assumption used to be latent — nothing
// enforced it — so take/give/clear now carry an always-on concurrent-use
// guard: two threads mutating the same arena at once abort instead of
// corrupting the free lists. Kernels accept `Workspace* ws = nullptr` and
// fall back to plain locals through Borrowed, so standalone calls need no
// arena.
//
// A Workspace may also carry the rank's ThreadPool (set_pool): kernels
// reach their execution resources and their scratch through the one
// pointer they already take. Sub-arenas never carry a pool — parallel
// sections do not nest.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <typeindex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace hgr {

class ThreadPool;

class Workspace {
 public:
  struct Stats {
    std::uint64_t takes = 0;        // total take<T>() calls
    std::uint64_t reuses = 0;       // served from a pooled vector
    std::uint64_t allocations = 0;  // served by a fresh (empty) vector
  };

  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// A cleared vector<T>, reusing pooled capacity when available.
  template <typename T>
  std::vector<T> take() {
    const BusyGuard guard(busy_);
    TypedPool<T>& pool = typed_pool<T>();
    ++stats_.takes;
    if (!pool.free.empty()) {
      ++stats_.reuses;
      std::vector<T> v = std::move(pool.free.back());
      pool.free.pop_back();
      v.clear();
      return v;
    }
    ++stats_.allocations;
    return {};
  }

  /// Return a vector to the pool; its capacity is what gets recycled.
  template <typename T>
  void give(std::vector<T>&& v) {
    const BusyGuard guard(busy_);
    typed_pool<T>().free.push_back(std::move(v));
  }

  /// Drop every pooled vector (frees all recycled capacity). Sub-arenas
  /// are kept (their capacity is dropped too).
  void clear() {
    const BusyGuard guard(busy_);
    pools_.clear();
    for (const auto& child : threads_) child->clear();
  }

  /// Ensure sub-arenas exist for threads 1..num_threads-1. Must be called
  /// from the owning thread before a parallel section hands the arenas
  /// out; idempotent and growing-only.
  void reserve_threads(int num_threads) {
    const BusyGuard guard(busy_);
    while (static_cast<int>(threads_.size()) + 1 < num_threads)
      threads_.push_back(std::make_unique<Workspace>());
  }

  /// The per-thread sub-arena for pool thread t. for_thread(0) is this
  /// arena itself (the caller participates as thread 0); t >= 1 requires a
  /// prior reserve_threads. Each sub-arena keeps its capacity across
  /// parallel sections and levels, exactly like the parent.
  Workspace& for_thread(int t) {
    if (t == 0) return *this;
    HGR_ASSERT_MSG(t >= 1 && t <= static_cast<int>(threads_.size()),
                   "for_thread without a prior reserve_threads");
    return *threads_[static_cast<std::size_t>(t - 1)];
  }

  /// The rank's thread pool, when one is attached (null = run serial).
  /// Kernels read this instead of growing a ThreadPool* parameter.
  ThreadPool* pool() const { return pool_; }
  void set_pool(ThreadPool* pool) { pool_ = pool; }

  /// Pooled vectors currently waiting for reuse (over all types).
  std::size_t pooled() const {
    std::size_t total = 0;
    for (const auto& [type, pool] : pools_) total += pool->size();
    return total;
  }

  const Stats& stats() const { return stats_; }

 private:
  /// Always-on concurrent-use detector: mutating entry points exchange a
  /// busy flag and abort if it was already set. One relaxed-ish atomic
  /// exchange per take/give — noise next to the vector moves it guards.
  class BusyGuard {
   public:
    explicit BusyGuard(std::atomic<bool>& busy) : busy_(busy) {
      HGR_ASSERT_MSG(!busy_.exchange(true, std::memory_order_acquire),
                     "Workspace mutated from two threads at once; use "
                     "for_thread(t) sub-arenas inside parallel sections");
    }
    ~BusyGuard() { busy_.store(false, std::memory_order_release); }
    BusyGuard(const BusyGuard&) = delete;
    BusyGuard& operator=(const BusyGuard&) = delete;

   private:
    std::atomic<bool>& busy_;
  };

  struct PoolBase {
    virtual ~PoolBase() = default;
    virtual std::size_t size() const = 0;
  };
  template <typename T>
  struct TypedPool final : PoolBase {
    std::vector<std::vector<T>> free;
    std::size_t size() const override { return free.size(); }
  };

  template <typename T>
  TypedPool<T>& typed_pool() {
    std::unique_ptr<PoolBase>& slot = pools_[std::type_index(typeid(T))];
    if (slot == nullptr) slot = std::make_unique<TypedPool<T>>();
    return static_cast<TypedPool<T>&>(*slot);
  }

  std::unordered_map<std::type_index, std::unique_ptr<PoolBase>> pools_;
  std::vector<std::unique_ptr<Workspace>> threads_;  // sub-arenas, t - 1
  ThreadPool* pool_ = nullptr;
  Stats stats_;
  std::atomic<bool> busy_{false};
};

/// RAII borrow of one scratch vector. With a null workspace it degrades to
/// a plain local vector, so kernels can be called with or without an
/// arena through the same code path.
template <typename T>
class Borrowed {
 public:
  explicit Borrowed(Workspace* ws) : ws_(ws) {
    if (ws_ != nullptr) vec_ = ws_->take<T>();
  }
  ~Borrowed() {
    if (ws_ != nullptr) ws_->give(std::move(vec_));
  }
  Borrowed(const Borrowed&) = delete;
  Borrowed& operator=(const Borrowed&) = delete;

  std::vector<T>& operator*() { return vec_; }
  std::vector<T>* operator->() { return &vec_; }
  const std::vector<T>* operator->() const { return &vec_; }
  std::vector<T>& get() { return vec_; }
  const std::vector<T>& get() const { return vec_; }

  decltype(auto) operator[](std::size_t i) { return vec_[i]; }
  decltype(auto) operator[](std::size_t i) const { return vec_[i]; }

 private:
  Workspace* ws_;
  std::vector<T> vec_;
};

}  // namespace hgr
