// Bucket priority queue ("gain buckets") for Fiduccia-Mattheyses refinement.
//
// Classic FM data structure: items (vertices) are keyed by an integer gain
// in a bounded range; buckets are doubly-linked lists indexed by gain, and a
// max-gain pointer makes pop-max amortized O(1). Supports the operations FM
// needs: insert, remove, adjust-key (re-gain), pop-max, and LIFO tie-break
// within a bucket (helps FM escape plateaus, per the original paper).
#pragma once

#include <cstddef>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace hgr {

class BucketPQ {
 public:
  /// num_items: item ids are 0..num_items-1.
  /// max_abs_gain: gains are clamped-checked to [-max_abs_gain, max_abs_gain].
  BucketPQ(Index num_items, Weight max_abs_gain)
      : max_abs_(max_abs_gain),
        num_buckets_(2 * max_abs_gain + 1),
        heads_(static_cast<std::size_t>(num_buckets_), kInvalidIndex),
        next_(static_cast<std::size_t>(num_items), kInvalidIndex),
        prev_(static_cast<std::size_t>(num_items), kInvalidIndex),
        gain_(static_cast<std::size_t>(num_items), 0),
        in_queue_(static_cast<std::size_t>(num_items), false),
        max_bucket_(-1),
        size_(0) {}

  bool empty() const { return size_ == 0; }
  Index size() const { return size_; }
  bool contains(Index item) const {
    return in_queue_[static_cast<std::size_t>(item)];
  }
  Weight gain(Index item) const {
    HGR_DASSERT(contains(item));
    return gain_[static_cast<std::size_t>(item)];
  }

  void insert(Index item, Weight gain) {
    HGR_DASSERT(!contains(item));
    HGR_DASSERT(gain >= -max_abs_ && gain <= max_abs_);
    const auto b = bucket_of(gain);
    push_front(item, b);
    gain_[static_cast<std::size_t>(item)] = gain;
    in_queue_[static_cast<std::size_t>(item)] = true;
    if (b > max_bucket_) max_bucket_ = b;
    ++size_;
  }

  void remove(Index item) {
    HGR_DASSERT(contains(item));
    unlink(item, bucket_of(gain_[static_cast<std::size_t>(item)]));
    in_queue_[static_cast<std::size_t>(item)] = false;
    --size_;
    settle_max();
  }

  /// Change an item's gain (typical after a neighbor move in FM).
  void adjust(Index item, Weight new_gain) {
    HGR_DASSERT(contains(item));
    HGR_DASSERT(new_gain >= -max_abs_ && new_gain <= max_abs_);
    const Weight old_gain = gain_[static_cast<std::size_t>(item)];
    if (old_gain == new_gain) return;
    unlink(item, bucket_of(old_gain));
    const auto b = bucket_of(new_gain);
    push_front(item, b);
    gain_[static_cast<std::size_t>(item)] = new_gain;
    if (b > max_bucket_) max_bucket_ = b;
    settle_max();
  }

  /// Highest-gain item (LIFO within the bucket). Queue must be non-empty.
  Index top() const {
    HGR_DASSERT(!empty());
    return heads_[static_cast<std::size_t>(max_bucket_)];
  }

  Weight top_gain() const {
    HGR_DASSERT(!empty());
    return max_bucket_ - max_abs_;
  }

  Index pop() {
    const Index item = top();
    remove(item);
    return item;
  }

  void clear() {
    if (size_ == 0) return;
    for (std::size_t b = 0; b < heads_.size(); ++b) heads_[b] = kInvalidIndex;
    for (std::size_t i = 0; i < in_queue_.size(); ++i) in_queue_[i] = false;
    max_bucket_ = -1;
    size_ = 0;
  }

 private:
  Weight bucket_of(Weight gain) const { return gain + max_abs_; }

  void push_front(Index item, Weight b) {
    const auto bi = static_cast<std::size_t>(b);
    const auto ii = static_cast<std::size_t>(item);
    next_[ii] = heads_[bi];
    prev_[ii] = kInvalidIndex;
    if (heads_[bi] != kInvalidIndex)
      prev_[static_cast<std::size_t>(heads_[bi])] = item;
    heads_[bi] = item;
  }

  void unlink(Index item, Weight b) {
    const auto ii = static_cast<std::size_t>(item);
    const Index nx = next_[ii];
    const Index pv = prev_[ii];
    if (pv != kInvalidIndex) {
      next_[static_cast<std::size_t>(pv)] = nx;
    } else {
      heads_[static_cast<std::size_t>(b)] = nx;
    }
    if (nx != kInvalidIndex) prev_[static_cast<std::size_t>(nx)] = pv;
  }

  void settle_max() {
    while (max_bucket_ >= 0 &&
           heads_[static_cast<std::size_t>(max_bucket_)] == kInvalidIndex) {
      --max_bucket_;
    }
  }

  Weight max_abs_;
  Weight num_buckets_;
  std::vector<Index> heads_;   // bucket -> first item
  std::vector<Index> next_;    // item -> next in bucket
  std::vector<Index> prev_;    // item -> prev in bucket
  std::vector<Weight> gain_;   // item -> current gain
  std::vector<bool> in_queue_;
  Weight max_bucket_;          // index of highest non-empty bucket, -1 if none
  Index size_;
};

}  // namespace hgr
