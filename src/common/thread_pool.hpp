// ThreadPool: the shared-memory execution layer under the rank layer.
//
// The parallel runtime (parallel/comm.hpp) emulates *distribution*: p
// ranks exchanging messages. This pool supplies *shared-memory*
// parallelism inside one rank: a fixed set of threads running
// statically-chunked loops over vertices or nets, with the caller
// participating as thread 0. Ranks and threads compose — each rank owns
// its own pool, so a run uses ranks x threads cores
// (docs/PARALLELISM.md).
//
// Determinism contract: the pool never influences results. Chunk
// boundaries are a pure function of (n, num_threads), every parallel
// kernel in src/partition is written so its output is a function of the
// round-start state only, and all cross-chunk arbitration happens on the
// caller thread. threads=1 and threads=8 produce bit-identical partitions
// (enforced by the ThreadDeterminism suite).
//
// Error handling: a job that throws on any thread is captured as an
// exception_ptr; run() joins every thread for the region and then
// rethrows the first capture on the caller. The pool stays usable
// afterwards, so fault-injection paths unwind through parallel regions
// cleanly (chaos CI runs with --threads=4).
#pragma once

#include <functional>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace hgr {

class ThreadPool {
 public:
  /// Spawns num_threads - 1 persistent workers (clamped to >= 1; a pool of
  /// one spawns nothing and runs every job inline).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs f(t) for every t in [0, num_threads): the caller executes t == 0,
  /// the workers the rest. Blocks until all complete; rethrows the first
  /// exception any thread raised (after every thread finished the region).
  void run(const std::function<void(int)>& f);

  /// Static contiguous chunking of [0, n): thread t runs
  /// f(t, begin, end) on its chunk. Empty chunks (n < num_threads) are
  /// skipped. The chunk map is a pure function of (n, num_threads), never
  /// of scheduling order.
  void parallel_chunks(Index n, const std::function<void(int, Index, Index)>& f);

  /// Chunk t of [0, n) split T ways: the first n % T chunks get one extra
  /// element. Exposed so kernels can precompute which thread owns an index.
  static std::pair<Index, Index> chunk(Index n, int t, int num_threads);

 private:
  void worker_loop(int t);

  const int num_threads_;
  std::vector<std::thread> workers_;
  // Start/done signalling; see thread_pool.cpp for the protocol.
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Run f(t, begin, end) over [0, n): through `pool` when one is available
/// and has more than one thread, else inline as a single chunk f(0, 0, n).
/// The uniform entry point for kernels holding a nullable pool.
inline void parallel_chunks(ThreadPool* pool, Index n,
                            const std::function<void(int, Index, Index)>& f) {
  if (n <= 0) return;
  if (pool == nullptr || pool->num_threads() == 1) {
    f(0, 0, n);
    return;
  }
  pool->parallel_chunks(n, f);
}

/// Threads a nullable pool resolves to (1 when absent).
inline int pool_threads(const ThreadPool* pool) {
  return pool == nullptr ? 1 : pool->num_threads();
}

}  // namespace hgr
