// Deterministic pseudo-random number generation.
//
// Every randomized stage of the partitioner takes an explicit seed so a
// given (input, config, seed) triple is bit-reproducible across runs; trial
// averaging varies the seed, never the clock. xoshiro256** is used for its
// speed and quality; splitmix64 seeds it and derives stream seeds.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace hgr {

/// splitmix64 step: used to expand one user seed into generator state and to
/// derive independent stream seeds (e.g. one per rank, one per trial).
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Derive a child seed from a parent seed and a stream index.
inline std::uint64_t derive_seed(std::uint64_t parent, std::uint64_t stream) {
  std::uint64_t s = parent ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
  return splitmix64(s);
}

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) {
    HGR_DASSERT(bound > 0);
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    HGR_DASSERT(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = below(i);
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

/// Identity permutation 0..n-1 shuffled with rng, written into an existing
/// vector so per-level callers can reuse its capacity (Workspace arena).
inline void random_permutation_into(std::vector<std::int32_t>& perm,
                                    std::int32_t n, Rng& rng) {
  perm.resize(static_cast<std::size_t>(n));
  for (std::int32_t i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
  rng.shuffle(perm);
}

/// Identity permutation 0..n-1 shuffled with rng: the canonical "visit
/// vertices in random order" helper used by matching and refinement.
inline std::vector<std::int32_t> random_permutation(std::int32_t n, Rng& rng) {
  std::vector<std::int32_t> perm;
  random_permutation_into(perm, n, rng);
  return perm;
}

}  // namespace hgr
