// Wall-clock timing for the run-time figures (paper Figures 7-8).
#pragma once

#include <chrono>
#include <string>

namespace hgr {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates named phase timings (coarsen / initial / refine / ...).
class PhaseTimer {
 public:
  void start() { timer_.reset(); }
  double stop() { return timer_.seconds(); }

 private:
  WallTimer timer_;
};

/// Format seconds as a human-readable string ("12.3 ms", "4.56 s").
std::string format_seconds(double s);

}  // namespace hgr
