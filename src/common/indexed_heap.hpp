// Indexed binary max-heap: a priority queue over item ids 0..n-1 with
// O(log n) insert / remove / adjust and O(1) top.
//
// FM refinement classically uses gain buckets (see bucket_pq.hpp), but the
// repartitioning model scales net costs by alpha (up to 1000), so gains can
// span millions and bucket arrays would dwarf the hypergraph. The heap's
// range-independence makes it the default gain queue; the bucket queue is
// kept as a config option and ablation subject for the unscaled case.
#pragma once

#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace hgr {

class IndexedMaxHeap {
 public:
  explicit IndexedMaxHeap(Index num_items)
      : pos_(static_cast<std::size_t>(num_items), kInvalidIndex),
        key_(static_cast<std::size_t>(num_items), 0) {}

  bool empty() const { return heap_.empty(); }
  Index size() const { return static_cast<Index>(heap_.size()); }
  bool contains(Index item) const {
    return pos_[static_cast<std::size_t>(item)] != kInvalidIndex;
  }
  Weight key(Index item) const {
    HGR_DASSERT(contains(item));
    return key_[static_cast<std::size_t>(item)];
  }

  void insert(Index item, Weight key) {
    HGR_DASSERT(!contains(item));
    key_[static_cast<std::size_t>(item)] = key;
    pos_[static_cast<std::size_t>(item)] = static_cast<Index>(heap_.size());
    heap_.push_back(item);
    sift_up(static_cast<Index>(heap_.size()) - 1);
  }

  void remove(Index item) {
    HGR_DASSERT(contains(item));
    const Index hole = pos_[static_cast<std::size_t>(item)];
    const Index last = static_cast<Index>(heap_.size()) - 1;
    if (hole != last) {
      move_to(heap_[static_cast<std::size_t>(last)], hole);
      heap_.pop_back();
      if (!sift_up(hole)) sift_down(hole);
    } else {
      heap_.pop_back();
    }
    pos_[static_cast<std::size_t>(item)] = kInvalidIndex;
  }

  void adjust(Index item, Weight new_key) {
    HGR_DASSERT(contains(item));
    const Weight old_key = key_[static_cast<std::size_t>(item)];
    if (old_key == new_key) return;
    key_[static_cast<std::size_t>(item)] = new_key;
    const Index at = pos_[static_cast<std::size_t>(item)];
    if (new_key > old_key) {
      sift_up(at);
    } else {
      sift_down(at);
    }
  }

  void insert_or_adjust(Index item, Weight key) {
    if (contains(item)) {
      adjust(item, key);
    } else {
      insert(item, key);
    }
  }

  Index top() const {
    HGR_DASSERT(!empty());
    return heap_.front();
  }

  Weight top_key() const {
    HGR_DASSERT(!empty());
    return key_[static_cast<std::size_t>(heap_.front())];
  }

  Index pop() {
    const Index item = top();
    remove(item);
    return item;
  }

  void clear() {
    for (const Index item : heap_)
      pos_[static_cast<std::size_t>(item)] = kInvalidIndex;
    heap_.clear();
  }

 private:
  void move_to(Index item, Index slot) {
    heap_[static_cast<std::size_t>(slot)] = item;
    pos_[static_cast<std::size_t>(item)] = slot;
  }

  Weight key_at(Index slot) const {
    return key_[static_cast<std::size_t>(heap_[static_cast<std::size_t>(slot)])];
  }

  /// Returns true if the element moved.
  bool sift_up(Index at) {
    if (at >= static_cast<Index>(heap_.size())) return false;
    const Index item = heap_[static_cast<std::size_t>(at)];
    const Weight k = key_[static_cast<std::size_t>(item)];
    bool moved = false;
    while (at > 0) {
      const Index parent = (at - 1) / 2;
      if (key_at(parent) >= k) break;
      move_to(heap_[static_cast<std::size_t>(parent)], at);
      at = parent;
      moved = true;
    }
    if (moved) move_to(item, at);
    return moved;
  }

  void sift_down(Index at) {
    if (at >= static_cast<Index>(heap_.size())) return;
    const Index n = static_cast<Index>(heap_.size());
    const Index item = heap_[static_cast<std::size_t>(at)];
    const Weight k = key_[static_cast<std::size_t>(item)];
    bool moved = false;
    while (true) {
      Index child = 2 * at + 1;
      if (child >= n) break;
      if (child + 1 < n && key_at(child + 1) > key_at(child)) ++child;
      if (key_at(child) <= k) break;
      move_to(heap_[static_cast<std::size_t>(child)], at);
      at = child;
      moved = true;
    }
    if (moved) move_to(item, at);
  }

  std::vector<Index> heap_;  // slot -> item
  std::vector<Index> pos_;   // item -> slot or kInvalidIndex
  std::vector<Weight> key_;  // item -> key
};

}  // namespace hgr
