// Lightweight always-on assertion macros.
//
// Partitioning bugs tend to produce silently-wrong partitions rather than
// crashes, so invariant checks stay enabled in release builds; the hot inner
// loops use HGR_DASSERT which compiles away outside debug builds.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace hgr::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "hgr assertion failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg ? msg : "");
  std::abort();
}

}  // namespace hgr::detail

#define HGR_ASSERT(expr)                                              \
  do {                                                                \
    if (!(expr))                                                      \
      ::hgr::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define HGR_ASSERT_MSG(expr, msg)                                  \
  do {                                                             \
    if (!(expr))                                                   \
      ::hgr::detail::assert_fail(#expr, __FILE__, __LINE__, msg);  \
  } while (0)

#ifndef NDEBUG
#define HGR_DASSERT(expr) HGR_ASSERT(expr)
#else
#define HGR_DASSERT(expr) ((void)0)
#endif
