// Lightweight always-on assertion macros.
//
// Partitioning bugs tend to produce silently-wrong partitions rather than
// crashes, so invariant checks stay enabled in release builds; the hot inner
// loops use HGR_DASSERT which compiles away outside debug builds.
//
// Failure handling is pluggable: by default a failed assertion prints and
// aborts (the right behavior in the CLI and in production drivers), but a
// handler that throws AssertionError can be installed so tests can assert
// on failures without death tests. The invariant validators in src/check/
// route their failures through the same handler.
#pragma once

#include <stdexcept>
#include <string>

namespace hgr {

/// Thrown instead of aborting when the throwing failure handler is
/// installed (see ScopedAssertHandler). what() carries the full diagnostic
/// (expression, location, message).
class AssertionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

/// A failure handler receives the stringified expression, source location,
/// and an optional message. It may throw (the normal way to take over
/// control); if it returns, the process aborts to preserve the [[noreturn]]
/// contract of assert_fail.
using AssertHandler = void (*)(const char* expr, const char* file, int line,
                               const char* msg);

/// Install a failure handler; nullptr restores the default print-and-abort
/// behavior. Returns the previously installed handler (nullptr if default).
AssertHandler set_assert_handler(AssertHandler handler);

/// The handler ScopedAssertHandler installs: throws AssertionError.
[[noreturn]] void throwing_assert_handler(const char* expr, const char* file,
                                          int line, const char* msg);

[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const char* msg);

/// printf-formats the message, then calls assert_fail.
[[noreturn]] void assert_fail_fmt(const char* expr, const char* file,
                                  int line, const char* fmt, ...)
    __attribute__((format(printf, 4, 5)));

}  // namespace detail

/// RAII: route assertion and validator failures into AssertionError for the
/// scope's lifetime. Not reentrant across threads: the handler is global,
/// so install it once around the code under test.
class ScopedAssertHandler {
 public:
  ScopedAssertHandler()
      : prev_(detail::set_assert_handler(detail::throwing_assert_handler)) {}
  ~ScopedAssertHandler() { detail::set_assert_handler(prev_); }
  ScopedAssertHandler(const ScopedAssertHandler&) = delete;
  ScopedAssertHandler& operator=(const ScopedAssertHandler&) = delete;

 private:
  detail::AssertHandler prev_;
};

}  // namespace hgr

#define HGR_ASSERT(expr)                                              \
  do {                                                                \
    if (!(expr))                                                      \
      ::hgr::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define HGR_ASSERT_MSG(expr, msg)                                  \
  do {                                                             \
    if (!(expr))                                                   \
      ::hgr::detail::assert_fail(#expr, __FILE__, __LINE__, msg);  \
  } while (0)

/// Assertion with a printf-style message so the diagnostic carries operand
/// values: HGR_ASSERT_FMT(w >= 0, "vertex %d has weight %lld", v, w);
#define HGR_ASSERT_FMT(expr, fmt, ...)                                   \
  do {                                                                   \
    if (!(expr))                                                         \
      ::hgr::detail::assert_fail_fmt(#expr, __FILE__, __LINE__,          \
                                     fmt __VA_OPT__(, ) __VA_ARGS__);    \
  } while (0)

#ifndef NDEBUG
#define HGR_DASSERT(expr) HGR_ASSERT(expr)
#else
#define HGR_DASSERT(expr) ((void)0)
#endif
