// Disjoint-set union with path halving and union by size.
//
// Used by the workload generators (connectivity repair) and by tests that
// verify contraction groups.
#pragma once

#include <numeric>
#include <vector>

#include "common/types.hpp"

namespace hgr {

class DisjointSets {
 public:
  explicit DisjointSets(Index n)
      : parent_(static_cast<std::size_t>(n)),
        size_(static_cast<std::size_t>(n), 1) {
    std::iota(parent_.begin(), parent_.end(), Index{0});
  }

  Index find(Index x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      auto& p = parent_[static_cast<std::size_t>(x)];
      p = parent_[static_cast<std::size_t>(p)];
      x = p;
    }
    return x;
  }

  /// Returns true if a and b were in different sets (i.e. a merge happened).
  bool unite(Index a, Index b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[static_cast<std::size_t>(a)] < size_[static_cast<std::size_t>(b)])
      std::swap(a, b);
    parent_[static_cast<std::size_t>(b)] = a;
    size_[static_cast<std::size_t>(a)] += size_[static_cast<std::size_t>(b)];
    return true;
  }

  bool same(Index a, Index b) { return find(a) == find(b); }

  Index set_size(Index x) {
    return size_[static_cast<std::size_t>(find(x))];
  }

  Index num_sets() {
    Index count = 0;
    for (Index i = 0; i < static_cast<Index>(parent_.size()); ++i)
      if (find(i) == i) ++count;
    return count;
  }

 private:
  std::vector<Index> parent_;
  std::vector<Index> size_;
};

}  // namespace hgr
