// Helpers for building compressed-sparse-row style offset/value arrays,
// the storage format of both the graph and hypergraph classes.
#pragma once

#include <span>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace hgr {

/// Exclusive prefix sum in place: counts[i] becomes sum of counts[0..i-1],
/// and a final total element is appended. Input of length n becomes offsets
/// of length n+1.
inline std::vector<Index> counts_to_offsets(std::vector<Index> counts) {
  Index running = 0;
  for (auto& c : counts) {
    const Index here = c;
    c = running;
    running += here;
  }
  counts.push_back(running);
  return counts;
}

/// View of one CSR row.
inline std::span<const Index> csr_row(std::span<const Index> offsets,
                                      std::span<const Index> values,
                                      Index row) {
  HGR_DASSERT(row >= 0 && row + 1 < static_cast<Index>(offsets.size()));
  const auto begin = offsets[static_cast<std::size_t>(row)];
  const auto end = offsets[static_cast<std::size_t>(row) + 1];
  return values.subspan(static_cast<std::size_t>(begin),
                        static_cast<std::size_t>(end - begin));
}

}  // namespace hgr
