#include "common/assert.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace hgr::detail {

namespace {

std::atomic<AssertHandler> g_handler{nullptr};

std::string format_failure(const char* expr, const char* file, int line,
                           const char* msg) {
  std::string out = "hgr assertion failed: ";
  out += expr;
  out += "\n  at ";
  out += file;
  out += ':';
  out += std::to_string(line);
  if (msg != nullptr && *msg != '\0') {
    out += "\n  ";
    out += msg;
  }
  return out;
}

}  // namespace

AssertHandler set_assert_handler(AssertHandler handler) {
  return g_handler.exchange(handler, std::memory_order_acq_rel);
}

void throwing_assert_handler(const char* expr, const char* file, int line,
                             const char* msg) {
  throw AssertionError(format_failure(expr, file, line, msg));
}

void assert_fail(const char* expr, const char* file, int line,
                 const char* msg) {
  const AssertHandler handler = g_handler.load(std::memory_order_acquire);
  if (handler != nullptr) handler(expr, file, line, msg);
  // Default path, or a custom handler that declined to throw: print and
  // abort so a failed invariant can never be silently ignored.
  std::fprintf(stderr, "%s\n", format_failure(expr, file, line, msg).c_str());
  std::abort();
}

void assert_fail_fmt(const char* expr, const char* file, int line,
                     const char* fmt, ...) {
  char buf[512];
  std::va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  assert_fail(expr, file, line, buf);
}

}  // namespace hgr::detail
