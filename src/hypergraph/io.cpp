#include "hypergraph/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "hypergraph/builder.hpp"

namespace hgr {

namespace {

[[noreturn]] void parse_error(const std::string& what) {
  throw std::runtime_error("hgr i/o parse error: " + what);
}

/// Next non-comment, non-blank line ('%' starts a comment, as in METIS).
bool next_data_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    std::size_t i = 0;
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    if (i == line.size() || line[i] == '%') continue;
    return true;
  }
  return false;
}

}  // namespace

Hypergraph read_hmetis(std::istream& in) {
  std::string line;
  if (!next_data_line(in, line)) parse_error("empty hypergraph file");
  std::istringstream header(line);
  long long num_nets = 0, num_vertices = 0;
  int fmt = 0;
  if (!(header >> num_nets >> num_vertices)) parse_error("bad header");
  header >> fmt;
  const bool has_net_costs = (fmt % 10) == 1;
  const bool has_vweights = (fmt / 10 % 10) == 1;
  const bool has_vsizes = (fmt / 100 % 10) == 1;
  if (num_nets < 0 || num_vertices < 0) parse_error("negative counts");

  HypergraphBuilder b(static_cast<Index>(num_vertices));
  b.keep_single_pin_nets(true);
  std::vector<Index> pins;
  for (long long n = 0; n < num_nets; ++n) {
    if (!next_data_line(in, line)) parse_error("missing net line");
    std::istringstream ls(line);
    Weight cost = 1;
    if (has_net_costs && !(ls >> cost)) parse_error("missing net cost");
    if (cost < 0)
      parse_error("negative net cost " + std::to_string(cost) + " on net " +
                  std::to_string(n + 1));
    pins.clear();
    long long pin;
    while (ls >> pin) {
      if (pin < 1 || pin > num_vertices)
        parse_error("pin " + std::to_string(pin) + " out of range [1, " +
                    std::to_string(num_vertices) + "] on net " +
                    std::to_string(n + 1));
      pins.push_back(static_cast<Index>(pin - 1));
    }
    if (!ls.eof()) parse_error("non-numeric pin on net " + std::to_string(n + 1));
    if (pins.empty()) parse_error("empty net");
    b.add_net(pins, cost);
  }
  if (has_vweights) {
    for (long long v = 0; v < num_vertices; ++v) {
      if (!next_data_line(in, line)) parse_error("missing vertex weight line");
      std::istringstream ls(line);
      Weight w = 1, s = 1;
      if (!(ls >> w)) parse_error("bad vertex weight");
      if (has_vsizes && !(ls >> s)) parse_error("missing vertex size");
      if (w < 0)
        parse_error("negative weight " + std::to_string(w) + " for vertex " +
                    std::to_string(v + 1));
      if (s < 0)
        parse_error("negative size " + std::to_string(s) + " for vertex " +
                    std::to_string(v + 1));
      b.set_vertex_weight(static_cast<Index>(v), w);
      b.set_vertex_size(static_cast<Index>(v), has_vsizes ? s : w);
    }
  }
  return b.finalize();
}

Hypergraph read_hmetis_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) parse_error("cannot open " + path);
  return read_hmetis(in);
}

void write_hmetis(const Hypergraph& h, std::ostream& out) {
  out << h.num_nets() << ' ' << h.num_vertices() << " 111\n";
  for (const NetId n : h.nets()) {
    out << h.net_cost(n);
    for (const VertexId v : h.pins(n)) out << ' ' << (v.v + 1);
    out << '\n';
  }
  for (const VertexId v : h.vertices())
    out << h.vertex_weight(v) << ' ' << h.vertex_size(v) << '\n';
}

void write_hmetis_file(const Hypergraph& h, const std::string& path) {
  std::ofstream out(path);
  if (!out) parse_error("cannot open " + path + " for writing");
  write_hmetis(h, out);
}

Graph read_metis_graph(std::istream& in) {
  std::string line;
  if (!next_data_line(in, line)) parse_error("empty graph file");
  std::istringstream header(line);
  long long num_vertices = 0, num_edges = 0;
  std::string fmt = "0";
  if (!(header >> num_vertices >> num_edges)) parse_error("bad graph header");
  header >> fmt;
  const bool has_ewgt = fmt.size() >= 1 && fmt[fmt.size() - 1] == '1';
  const bool has_vwgt = fmt.size() >= 2 && fmt[fmt.size() - 2] == '1';

  GraphBuilder b(static_cast<Index>(num_vertices));
  for (long long v = 0; v < num_vertices; ++v) {
    if (!next_data_line(in, line)) parse_error("missing adjacency line");
    std::istringstream ls(line);
    if (has_vwgt) {
      Weight w;
      if (!(ls >> w)) parse_error("missing vertex weight");
      b.set_vertex_weight(static_cast<Index>(v), w);
      b.set_vertex_size(static_cast<Index>(v), w);
    }
    long long nbr;
    while (ls >> nbr) {
      if (nbr < 1 || nbr > num_vertices) parse_error("neighbor out of range");
      Weight w = 1;
      if (has_ewgt && !(ls >> w)) parse_error("missing edge weight");
      if (nbr - 1 > v) b.add_edge(static_cast<Index>(v),
                                  static_cast<Index>(nbr - 1), w);
    }
  }
  Graph g = b.finalize();
  if (g.num_edges() != static_cast<Index>(num_edges)) {
    // Tolerate headers that count directed edges.
    if (g.num_edges() * 2 != static_cast<Index>(num_edges))
      parse_error("edge count mismatch");
  }
  return g;
}

Graph read_metis_graph_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) parse_error("cannot open " + path);
  return read_metis_graph(in);
}

void write_metis_graph(const Graph& g, std::ostream& out) {
  out << g.num_vertices() << ' ' << g.num_edges() << " 11\n";
  for (Index v = 0; v < g.num_vertices(); ++v) {
    out << g.vertex_weight(v);
    const auto nbrs = g.neighbors(v);
    const auto ws = g.edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i)
      out << ' ' << (nbrs[i] + 1) << ' ' << ws[i];
    out << '\n';
  }
}

void write_metis_graph_file(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) parse_error("cannot open " + path + " for writing");
  write_metis_graph(g, out);
}

Graph read_matrix_market(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) parse_error("empty MatrixMarket file");
  std::istringstream banner(line);
  std::string mm, object, format, field, symmetry;
  banner >> mm >> object >> format >> field >> symmetry;
  if (mm != "%%MatrixMarket") parse_error("missing MatrixMarket banner");
  if (object != "matrix" || format != "coordinate")
    parse_error("only 'matrix coordinate' MatrixMarket files are supported");
  const bool has_value = field != "pattern";

  if (!next_data_line(in, line)) parse_error("missing MatrixMarket sizes");
  std::istringstream sizes(line);
  long long rows = 0, cols = 0, entries = 0;
  if (!(sizes >> rows >> cols >> entries))
    parse_error("bad MatrixMarket size line");
  if (rows != cols) parse_error("matrix must be square");
  if (rows <= 0) parse_error("empty matrix");

  GraphBuilder b(static_cast<Index>(rows));
  for (long long e = 0; e < entries; ++e) {
    if (!next_data_line(in, line)) parse_error("missing MatrixMarket entry");
    std::istringstream entry(line);
    long long i = 0, j = 0;
    if (!(entry >> i >> j)) parse_error("bad MatrixMarket entry");
    if (has_value) {
      double value;
      entry >> value;  // pattern-only use; value ignored
    }
    if (i < 1 || i > rows || j < 1 || j > cols)
      parse_error("MatrixMarket index out of range");
    if (i != j)
      b.add_edge(static_cast<Index>(i - 1), static_cast<Index>(j - 1), 1);
  }
  // GraphBuilder symmetrizes and merges duplicates, which also handles the
  // 'symmetric'/'general' distinction: both collapse to the A + A^T
  // pattern with unit weights... except duplicate (i,j)+(j,i) entries in a
  // general file would sum to weight 2; rebuild with weight-1 edges.
  Graph merged = b.finalize();
  GraphBuilder clean(merged.num_vertices());
  for (Index v = 0; v < merged.num_vertices(); ++v)
    for (const Index u : merged.neighbors(v))
      if (u > v) clean.add_edge(v, u, 1);
  return clean.finalize();
}

Graph read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) parse_error("cannot open " + path);
  return read_matrix_market(in);
}

}  // namespace hgr
