// Structural statistics: the numbers reported in the paper's Table 1
// (|V|, |E|, min/max/avg vertex degree) plus net-size statistics.
#pragma once

#include <string>

#include "hypergraph/graph.hpp"
#include "hypergraph/hypergraph.hpp"

namespace hgr {

struct DegreeStats {
  Index min = 0;
  Index max = 0;
  double avg = 0.0;
};

DegreeStats graph_degree_stats(const Graph& g);
DegreeStats hypergraph_vertex_degree_stats(const Hypergraph& h);
DegreeStats hypergraph_net_size_stats(const Hypergraph& h);

/// One row of Table 1: "name  |V|  |E|  min  max  avg  area".
std::string table1_row(const std::string& name, const Graph& g,
                       const std::string& application_area);

/// Whether the graph is connected (BFS from vertex 0; empty graph counts
/// as connected).
bool is_connected(const Graph& g);

}  // namespace hgr
