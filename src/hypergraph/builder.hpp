// Incremental construction of Hypergraph and Graph objects.
//
// Builders accept nets/edges in any order, deduplicate pins within a net,
// drop degenerate nets (fewer than 2 pins contribute no cut and are elided
// by default, matching standard partitioner preprocessing), and finalize
// into CSR storage.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "hypergraph/graph.hpp"
#include "hypergraph/hypergraph.hpp"

namespace hgr {

class HypergraphBuilder {
 public:
  /// num_vertices fixes the vertex id space [0, num_vertices).
  explicit HypergraphBuilder(Index num_vertices);

  Index num_vertices() const { return num_vertices_; }
  Index num_nets_added() const { return static_cast<Index>(net_costs_.size()); }

  /// Add a net over the given pins with the given cost. Duplicate pins are
  /// removed. Returns the net's index among *added* nets; note that nets
  /// that end up with < 2 distinct pins are dropped at finalize() unless
  /// keep_single_pin_nets(true) was called.
  Index add_net(std::span<const Index> pins, Weight cost = 1);
  Index add_net(std::initializer_list<Index> pins, Weight cost = 1);

  void set_vertex_weight(Index v, Weight w);
  void set_vertex_size(Index v, Weight s);
  void set_all_vertex_weights(Weight w);
  void set_all_vertex_sizes(Weight s);
  void set_fixed_part(Index v, PartId part);

  void keep_single_pin_nets(bool keep) { keep_single_pin_ = keep; }

  /// Build the hypergraph. The builder is left in a moved-from state.
  Hypergraph finalize();

 private:
  Index num_vertices_;
  std::vector<std::vector<Index>> nets_;
  std::vector<Weight> net_costs_;
  std::vector<Weight> vertex_weights_;
  std::vector<Weight> vertex_sizes_;
  std::vector<PartId> fixed_;
  bool any_fixed_ = false;
  bool keep_single_pin_ = false;
};

class GraphBuilder {
 public:
  explicit GraphBuilder(Index num_vertices);

  /// Add an undirected edge {u, v} with weight w. Self loops are ignored;
  /// parallel edges are merged by summing weights at finalize().
  void add_edge(Index u, Index v, Weight w = 1);

  void set_vertex_weight(Index v, Weight w);
  void set_vertex_size(Index v, Weight s);

  Graph finalize();

 private:
  Index num_vertices_;
  struct Edge {
    Index u, v;
    Weight w;
  };
  std::vector<Edge> edges_;
  std::vector<Weight> vertex_weights_;
  std::vector<Weight> vertex_sizes_;
};

}  // namespace hgr
