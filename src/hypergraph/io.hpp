// Text file I/O for hypergraphs and graphs.
//
// Hypergraphs use the hMETIS/PaToH-style format:
//   line 1: <num_nets> <num_vertices> [fmt]
//     fmt: 0 (default, no weights), 1 = net costs, 10 = vertex weights,
//          11 = both. hgr extends with an optional third weight column for
//          vertex sizes when fmt has a hundreds digit of 1 (e.g. 111).
//   next num_nets lines: [cost] pin pin pin...   (pins are 1-based)
//   next num_vertices lines (if vertex weights): weight [size]
//
// Graphs use the METIS format:
//   line 1: <num_vertices> <num_edges> [fmt]
//   next num_vertices lines: [weight] nbr [ewgt] nbr [ewgt] ...  (1-based)
//
// These readers let users feed the real Table-1 matrices to the harness if
// they have them; the repo's benchmarks default to synthetic analogs.
#pragma once

#include <iosfwd>
#include <string>

#include "hypergraph/graph.hpp"
#include "hypergraph/hypergraph.hpp"

namespace hgr {

Hypergraph read_hmetis(std::istream& in);
Hypergraph read_hmetis_file(const std::string& path);
void write_hmetis(const Hypergraph& h, std::ostream& out);
void write_hmetis_file(const Hypergraph& h, const std::string& path);

Graph read_metis_graph(std::istream& in);
Graph read_metis_graph_file(const std::string& path);
void write_metis_graph(const Graph& g, std::ostream& out);
void write_metis_graph_file(const Graph& g, const std::string& path);

/// MatrixMarket "coordinate" reader (the SuiteSparse format of the paper's
/// Table 1 matrices: xyce680s, cage14, ...). The sparsity pattern becomes
/// an undirected graph: entry (i, j), i != j, is the edge {i, j};
/// non-symmetric inputs are symmetrized (A + A^T pattern); values are
/// ignored (unit edge weights); the matrix must be square.
Graph read_matrix_market(std::istream& in);
Graph read_matrix_market_file(const std::string& path);

}  // namespace hgr
