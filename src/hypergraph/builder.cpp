#include "hypergraph/builder.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/csr_utils.hpp"

namespace hgr {

HypergraphBuilder::HypergraphBuilder(Index num_vertices)
    : num_vertices_(num_vertices),
      vertex_weights_(static_cast<std::size_t>(num_vertices), 1),
      vertex_sizes_(static_cast<std::size_t>(num_vertices), 1),
      fixed_(static_cast<std::size_t>(num_vertices), kNoPart) {
  HGR_ASSERT(num_vertices >= 0);
}

Index HypergraphBuilder::add_net(std::span<const Index> pins, Weight cost) {
  HGR_ASSERT(cost >= 0);
  std::vector<Index> ps(pins.begin(), pins.end());
  std::sort(ps.begin(), ps.end());
  ps.erase(std::unique(ps.begin(), ps.end()), ps.end());
  for (const Index v : ps) HGR_ASSERT(v >= 0 && v < num_vertices_);
  nets_.push_back(std::move(ps));
  net_costs_.push_back(cost);
  return static_cast<Index>(nets_.size()) - 1;
}

Index HypergraphBuilder::add_net(std::initializer_list<Index> pins,
                                 Weight cost) {
  return add_net(std::span<const Index>(pins.begin(), pins.size()), cost);
}

void HypergraphBuilder::set_vertex_weight(Index v, Weight w) {
  HGR_ASSERT(v >= 0 && v < num_vertices_ && w >= 0);
  vertex_weights_[static_cast<std::size_t>(v)] = w;
}

void HypergraphBuilder::set_vertex_size(Index v, Weight s) {
  HGR_ASSERT(v >= 0 && v < num_vertices_ && s >= 0);
  vertex_sizes_[static_cast<std::size_t>(v)] = s;
}

void HypergraphBuilder::set_all_vertex_weights(Weight w) {
  HGR_ASSERT(w >= 0);
  std::fill(vertex_weights_.begin(), vertex_weights_.end(), w);
}

void HypergraphBuilder::set_all_vertex_sizes(Weight s) {
  HGR_ASSERT(s >= 0);
  std::fill(vertex_sizes_.begin(), vertex_sizes_.end(), s);
}

void HypergraphBuilder::set_fixed_part(Index v, PartId part) {
  HGR_ASSERT(v >= 0 && v < num_vertices_);
  fixed_[static_cast<std::size_t>(v)] = part;
  if (part != kNoPart) any_fixed_ = true;
}

Hypergraph HypergraphBuilder::finalize() {
  const Index min_pins = keep_single_pin_ ? 1 : 2;
  std::vector<Index> counts;
  std::vector<Weight> costs;
  counts.reserve(nets_.size());
  for (std::size_t n = 0; n < nets_.size(); ++n) {
    if (static_cast<Index>(nets_[n].size()) >= min_pins) {
      counts.push_back(static_cast<Index>(nets_[n].size()));
      costs.push_back(net_costs_[n]);
    }
  }
  std::vector<Index> offsets = counts_to_offsets(std::move(counts));
  // The builder is the untyped construction boundary: raw pin integers
  // become VertexId here, once, on the way into the typed Hypergraph.
  std::vector<VertexId> pins(static_cast<std::size_t>(offsets.back()));
  std::size_t kept = 0;
  for (std::size_t n = 0; n < nets_.size(); ++n) {
    if (static_cast<Index>(nets_[n].size()) < min_pins) continue;
    std::transform(nets_[n].begin(), nets_[n].end(),
                   pins.begin() + offsets[kept],
                   [](Index v) { return VertexId{v}; });
    ++kept;
  }
  std::vector<PartId> fixed;
  if (any_fixed_) fixed = std::move(fixed_);
  return Hypergraph(std::move(offsets), std::move(pins),
                    std::move(vertex_weights_), std::move(vertex_sizes_),
                    std::move(costs), std::move(fixed));
}

GraphBuilder::GraphBuilder(Index num_vertices)
    : num_vertices_(num_vertices),
      vertex_weights_(static_cast<std::size_t>(num_vertices), 1),
      vertex_sizes_(static_cast<std::size_t>(num_vertices), 1) {
  HGR_ASSERT(num_vertices >= 0);
}

void GraphBuilder::add_edge(Index u, Index v, Weight w) {
  HGR_ASSERT(u >= 0 && u < num_vertices_ && v >= 0 && v < num_vertices_);
  HGR_ASSERT(w >= 0);
  if (u == v) return;
  if (u > v) std::swap(u, v);
  edges_.push_back({u, v, w});
}

void GraphBuilder::set_vertex_weight(Index v, Weight w) {
  HGR_ASSERT(v >= 0 && v < num_vertices_ && w >= 0);
  vertex_weights_[static_cast<std::size_t>(v)] = w;
}

void GraphBuilder::set_vertex_size(Index v, Weight s) {
  HGR_ASSERT(v >= 0 && v < num_vertices_ && s >= 0);
  vertex_sizes_[static_cast<std::size_t>(v)] = s;
}

Graph GraphBuilder::finalize() {
  // Merge parallel edges: sort by (u, v) and sum weights.
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  std::vector<Edge> merged;
  merged.reserve(edges_.size());
  for (const Edge& e : edges_) {
    if (!merged.empty() && merged.back().u == e.u && merged.back().v == e.v) {
      merged.back().w += e.w;
    } else {
      merged.push_back(e);
    }
  }
  std::vector<Index> degree(static_cast<std::size_t>(num_vertices_), 0);
  for (const Edge& e : merged) {
    ++degree[static_cast<std::size_t>(e.u)];
    ++degree[static_cast<std::size_t>(e.v)];
  }
  std::vector<Index> offsets = counts_to_offsets(std::move(degree));
  std::vector<Index> adjacency(static_cast<std::size_t>(offsets.back()));
  std::vector<Weight> eweights(adjacency.size());
  std::vector<Index> cursor(offsets.begin(), offsets.end() - 1);
  for (const Edge& e : merged) {
    auto& cu = cursor[static_cast<std::size_t>(e.u)];
    adjacency[static_cast<std::size_t>(cu)] = e.v;
    eweights[static_cast<std::size_t>(cu)] = e.w;
    ++cu;
    auto& cv = cursor[static_cast<std::size_t>(e.v)];
    adjacency[static_cast<std::size_t>(cv)] = e.u;
    eweights[static_cast<std::size_t>(cv)] = e.w;
    ++cv;
  }
  return Graph(std::move(offsets), std::move(adjacency), std::move(eweights),
               std::move(vertex_weights_), std::move(vertex_sizes_));
}

}  // namespace hgr
