#include "hypergraph/hypergraph.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <unordered_set>

namespace hgr {

Hypergraph::Hypergraph(std::vector<Index> net_offsets,
                       std::vector<VertexId> pins,
                       std::vector<Weight> vertex_weights,
                       std::vector<Weight> vertex_sizes,
                       std::vector<Weight> net_costs,
                       std::vector<PartId> fixed)
    : num_vertices_(static_cast<Index>(vertex_weights.size())),
      num_nets_(static_cast<Index>(net_costs.size())),
      net_offsets_(std::move(net_offsets)),
      pins_(std::move(pins)),
      vertex_weight_(std::move(vertex_weights)),
      vertex_size_(std::move(vertex_sizes)),
      net_cost_(std::move(net_costs)),
      fixed_(std::move(fixed)) {
  HGR_ASSERT(net_offsets_.size() == static_cast<std::size_t>(num_nets_) + 1);
  HGR_ASSERT(vertex_size_.size() == vertex_weight_.size());
  HGR_ASSERT(fixed_.empty() ||
             fixed_.size() == static_cast<std::size_t>(num_vertices_));
  total_vertex_weight_ =
      std::accumulate(vertex_weight_.begin(), vertex_weight_.end(), Weight{0});
  build_transpose();
}

void Hypergraph::build_transpose() {
  std::vector<Index> degree(static_cast<std::size_t>(num_vertices_), 0);
  for (const VertexId v : pins_) {
    HGR_ASSERT_MSG(v.v >= 0 && v.v < num_vertices_, "pin out of range");
    ++degree[static_cast<std::size_t>(v.v)];
  }
  vertex_offsets_.assign(static_cast<std::size_t>(num_vertices_) + 1, 0);
  for (Index v = 0; v < num_vertices_; ++v) {
    vertex_offsets_[static_cast<std::size_t>(v) + 1] =
        vertex_offsets_[static_cast<std::size_t>(v)] +
        degree[static_cast<std::size_t>(v)];
  }
  incident_nets_.resize(pins_.size());
  std::vector<Index> cursor(vertex_offsets_.begin(), vertex_offsets_.end() - 1);
  for (const NetId net : nets()) {
    for (const VertexId v : pins(net)) {
      incident_nets_[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(v.v)]++)] = net;
    }
  }
}

void Hypergraph::set_fixed_parts(std::vector<PartId> fixed) {
  HGR_ASSERT(fixed.empty() ||
             fixed.size() == static_cast<std::size_t>(num_vertices_));
  fixed_ = std::move(fixed);
}

void Hypergraph::set_vertex_weight(VertexId v, Weight w) {
  HGR_ASSERT(v.v >= 0 && v.v < num_vertices_ && w >= 0);
  total_vertex_weight_ += w - vertex_weight_[static_cast<std::size_t>(v.v)];
  vertex_weight_[static_cast<std::size_t>(v.v)] = w;
}

void Hypergraph::set_vertex_size(VertexId v, Weight s) {
  HGR_ASSERT(v.v >= 0 && v.v < num_vertices_ && s >= 0);
  vertex_size_[static_cast<std::size_t>(v.v)] = s;
}

void Hypergraph::scale_net_costs(Weight factor) {
  HGR_ASSERT(factor >= 1);
  for (auto& c : net_cost_) c *= factor;
}

void Hypergraph::validate(Index num_parts) const {
  HGR_ASSERT(net_offsets_.size() == static_cast<std::size_t>(num_nets_) + 1);
  HGR_ASSERT(net_offsets_.front() == 0);
  HGR_ASSERT(net_offsets_.back() == static_cast<Index>(pins_.size()));
  for (const NetId n : nets()) {
    HGR_ASSERT_MSG(net_offsets_[static_cast<std::size_t>(n.v)] <=
                       net_offsets_[static_cast<std::size_t>(n.v) + 1],
                   "net offsets not monotone");
    std::unordered_set<VertexId> seen;
    for (const VertexId v : pins(n)) {
      HGR_ASSERT_MSG(v.v >= 0 && v.v < num_vertices_, "pin out of range");
      HGR_ASSERT_MSG(seen.insert(v).second, "duplicate pin within a net");
    }
  }
  for (const VertexId v : vertices()) {
    HGR_ASSERT_MSG(vertex_weight(v) >= 0, "negative vertex weight");
    HGR_ASSERT_MSG(vertex_size(v) >= 0, "negative vertex size");
    for (const NetId n : incident_nets(v)) {
      HGR_ASSERT(n.v >= 0 && n.v < num_nets_);
      const auto ps = pins(n);
      HGR_ASSERT_MSG(std::find(ps.begin(), ps.end(), v) != ps.end(),
                     "transpose inconsistent with pins");
    }
  }
  Index pin_count = 0;
  for (const NetId n : nets()) pin_count += net_size(n);
  HGR_ASSERT(pin_count == num_pins());
  for (const NetId n : nets())
    HGR_ASSERT_MSG(net_cost(n) >= 0, "negative net cost");
  if (!fixed_.empty() && num_parts >= 0) {
    for (const VertexId v : vertices()) {
      HGR_ASSERT_MSG(fixed_part(v) >= kNoPart &&
                         fixed_part(v).v < num_parts,
                     "fixed part out of range");
    }
  }
}

std::string Hypergraph::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "|V|=%d |N|=%d pins=%d totalW=%lld fixed=%s", num_vertices_,
                num_nets_, num_pins(),
                static_cast<long long>(total_vertex_weight_),
                has_fixed() ? "yes" : "no");
  return buf;
}

}  // namespace hgr
