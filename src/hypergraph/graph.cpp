#include "hypergraph/graph.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>

namespace hgr {

Graph::Graph(std::vector<Index> offsets, std::vector<Index> adjacency,
             std::vector<Weight> edge_weights,
             std::vector<Weight> vertex_weights,
             std::vector<Weight> vertex_sizes)
    : num_vertices_(static_cast<Index>(vertex_weights.size())),
      offsets_(std::move(offsets)),
      adjacency_(std::move(adjacency)),
      edge_weights_(std::move(edge_weights)),
      vertex_weight_(std::move(vertex_weights)),
      vertex_size_(std::move(vertex_sizes)) {
  HGR_ASSERT(offsets_.size() == static_cast<std::size_t>(num_vertices_) + 1);
  HGR_ASSERT(edge_weights_.size() == adjacency_.size());
  HGR_ASSERT(vertex_size_.size() == vertex_weight_.size());
  total_vertex_weight_ =
      std::accumulate(vertex_weight_.begin(), vertex_weight_.end(), Weight{0});
}

void Graph::set_vertex_weight(Index v, Weight w) {
  HGR_ASSERT(v >= 0 && v < num_vertices_ && w >= 0);
  total_vertex_weight_ += w - vertex_weight_[static_cast<std::size_t>(v)];
  vertex_weight_[static_cast<std::size_t>(v)] = w;
}

void Graph::set_vertex_size(Index v, Weight s) {
  HGR_ASSERT(v >= 0 && v < num_vertices_ && s >= 0);
  vertex_size_[static_cast<std::size_t>(v)] = s;
}

void Graph::validate() const {
  HGR_ASSERT(offsets_.front() == 0);
  HGR_ASSERT(offsets_.back() == static_cast<Index>(adjacency_.size()));
  for (Index v = 0; v < num_vertices_; ++v) {
    HGR_ASSERT(offsets_[static_cast<std::size_t>(v)] <=
               offsets_[static_cast<std::size_t>(v) + 1]);
    HGR_ASSERT_MSG(vertex_weight(v) >= 0, "negative vertex weight");
    HGR_ASSERT_MSG(vertex_size(v) >= 0, "negative vertex size");
    const auto nbrs = neighbors(v);
    const auto ws = edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const Index u = nbrs[i];
      HGR_ASSERT_MSG(u >= 0 && u < num_vertices_, "neighbor out of range");
      HGR_ASSERT_MSG(u != v, "self loop");
      HGR_ASSERT_MSG(ws[i] >= 0, "negative edge weight");
      // Symmetry: v must appear in u's list with the same weight.
      const auto back = neighbors(u);
      const auto it = std::find(back.begin(), back.end(), v);
      HGR_ASSERT_MSG(it != back.end(), "asymmetric adjacency");
      const auto j = static_cast<std::size_t>(it - back.begin());
      HGR_ASSERT_MSG(edge_weights(u)[j] == ws[i], "asymmetric edge weight");
    }
  }
}

std::string Graph::summary() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "|V|=%d |E|=%d totalW=%lld", num_vertices_,
                num_edges(), static_cast<long long>(total_vertex_weight_));
  return buf;
}

}  // namespace hgr
