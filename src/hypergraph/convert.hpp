// Conversions between graph and hypergraph representations.
//
// The paper's test problems are structurally symmetric, "can be accurately
// represented as both graphs and hypergraphs": as a hypergraph, each
// undirected edge becomes a 2-pin net whose cost is the edge weight; then
// connectivity-1 cut == edge cut, so the two partitioners optimize the same
// number on these inputs and their results are directly comparable.
//
// We also provide the general sparse-matrix models (column-net / row-net)
// used for non-symmetric systems, and the clique expansion going the other
// way (the standard lossy graph approximation of a hypergraph).
#pragma once

#include "hypergraph/graph.hpp"
#include "hypergraph/hypergraph.hpp"

namespace hgr {

/// One 2-pin net per undirected edge; vertex weights/sizes copied.
Hypergraph graph_to_hypergraph(const Graph& g);

/// Star expansion of a symmetric pattern given as a graph: one net per
/// vertex containing the vertex and its neighbors (the column-net model of
/// the corresponding matrix with a full diagonal). Net cost = 1.
Hypergraph graph_to_column_net_hypergraph(const Graph& g);

/// Clique expansion: each net of size s becomes s*(s-1)/2 edges, each with
/// weight ~ cost/(s-1) (rounded, min 1) — the usual approximation that makes
/// graph edge cut mimic hypergraph connectivity cut. Nets larger than
/// max_clique_size are skipped to avoid quadratic blowup on huge nets.
Graph hypergraph_to_graph_clique(const Hypergraph& h,
                                 Index max_clique_size = 256);

}  // namespace hgr
