// Hypergraph H = (V, N): CSR pin storage plus its transpose.
//
// Conventions follow the IPDPS'07 repartitioning paper:
//   - vertex *weight* w_i  : computational load (the balance constraint);
//   - vertex *size*        : bytes migrated if the vertex changes parts
//                            (the cost of its migration net);
//   - net *cost* c_j       : bytes communicated per iteration when cut;
//     a cut net with connectivity lambda contributes c_j * (lambda - 1).
//   - fixed[v] in {kNoPart, 0..k-1}: fixed-vertex constraint for
//     partitioning with fixed vertices (paper Section 4).
//
// Ids are strongly typed (common/types.hpp): nets are addressed by NetId,
// vertices by VertexId; counts and CSR offsets are plain Index.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace hgr {

class Hypergraph {
 public:
  /// Empty hypergraph (0 vertices, 0 nets) with well-formed CSR arrays.
  Hypergraph() : net_offsets_{0}, vertex_offsets_{0} {}

  /// Takes ownership of fully-formed CSR arrays. net_offsets has
  /// num_nets+1 entries indexing into pins; weights/sizes have one entry
  /// per vertex; costs one per net. fixed may be empty (meaning: no vertex
  /// is fixed).
  Hypergraph(std::vector<Index> net_offsets, std::vector<VertexId> pins,
             std::vector<Weight> vertex_weights,
             std::vector<Weight> vertex_sizes, std::vector<Weight> net_costs,
             std::vector<PartId> fixed = {});

  Index num_vertices() const { return num_vertices_; }
  Index num_nets() const { return num_nets_; }
  Index num_pins() const { return static_cast<Index>(pins_.size()); }

  /// The vertex ids [0, num_vertices()) / net ids [0, num_nets()).
  IdRange<VertexId> vertices() const { return IdRange<VertexId>(num_vertices_); }
  IdRange<NetId> nets() const { return IdRange<NetId>(num_nets_); }

  std::span<const VertexId> pins(NetId net) const {
    HGR_DASSERT(net.v >= 0 && net.v < num_nets_);
    return {pins_.data() + net_offsets_[static_cast<std::size_t>(net.v)],
            pins_.data() + net_offsets_[static_cast<std::size_t>(net.v) + 1]};
  }

  Index net_size(NetId net) const {
    return net_offsets_[static_cast<std::size_t>(net.v) + 1] -
           net_offsets_[static_cast<std::size_t>(net.v)];
  }

  /// Nets incident to a vertex (the transpose rows).
  std::span<const NetId> incident_nets(VertexId v) const {
    HGR_DASSERT(v.v >= 0 && v.v < num_vertices_);
    return {
        incident_nets_.data() + vertex_offsets_[static_cast<std::size_t>(v.v)],
        incident_nets_.data() +
            vertex_offsets_[static_cast<std::size_t>(v.v) + 1]};
  }

  Index vertex_degree(VertexId v) const {
    return vertex_offsets_[static_cast<std::size_t>(v.v) + 1] -
           vertex_offsets_[static_cast<std::size_t>(v.v)];
  }

  Weight vertex_weight(VertexId v) const { return vertex_weights()[v]; }
  Weight vertex_size(VertexId v) const { return vertex_sizes()[v]; }
  Weight net_cost(NetId net) const { return net_costs()[net]; }

  IdSpan<VertexId, const Weight> vertex_weights() const {
    return std::span<const Weight>(vertex_weight_);
  }
  IdSpan<VertexId, const Weight> vertex_sizes() const {
    return std::span<const Weight>(vertex_size_);
  }
  IdSpan<NetId, const Weight> net_costs() const {
    return std::span<const Weight>(net_cost_);
  }

  Weight total_vertex_weight() const { return total_vertex_weight_; }

  /// Fixed-vertex constraints. has_fixed() is false iff every vertex is free.
  bool has_fixed() const { return !fixed_.empty(); }
  PartId fixed_part(VertexId v) const {
    return fixed_.empty() ? kNoPart
                          : fixed_[static_cast<std::size_t>(v.v)];
  }
  IdSpan<VertexId, const PartId> fixed_parts() const {
    return std::span<const PartId>(fixed_);
  }

  /// Install (or clear, with an empty vector) fixed-vertex constraints.
  void set_fixed_parts(std::vector<PartId> fixed);

  /// Mutate a vertex's weight/size in place (used by the AMR perturbation,
  /// which scales weights without changing structure).
  void set_vertex_weight(VertexId v, Weight w);
  void set_vertex_size(VertexId v, Weight s);

  /// Multiply every net cost by factor (the alpha-scaling of the
  /// repartitioning model). factor must be >= 1.
  void scale_net_costs(Weight factor);

  /// Abort with a diagnostic if any structural invariant is violated:
  /// sorted offsets, pins in range, no duplicate pin within a net,
  /// transpose consistent with pins, non-negative weights/costs,
  /// fixed parts within [kNoPart, k) for the given k (k < 0 skips that).
  void validate(Index num_parts = -1) const;

  /// Human-readable one-line summary, e.g. "|V|=682712 |N|=823232 pins=...".
  std::string summary() const;

 private:
  void build_transpose();

  Index num_vertices_ = 0;
  Index num_nets_ = 0;
  std::vector<Index> net_offsets_;      // net -> [begin,end) in pins_
  std::vector<VertexId> pins_;          // concatenated pin lists
  std::vector<Index> vertex_offsets_;   // vertex -> [begin,end) in incident_
  std::vector<NetId> incident_nets_;    // concatenated incident-net lists
  std::vector<Weight> vertex_weight_;
  std::vector<Weight> vertex_size_;
  std::vector<Weight> net_cost_;
  std::vector<PartId> fixed_;           // empty or one entry per vertex
  Weight total_vertex_weight_ = 0;
};

}  // namespace hgr
