#include "hypergraph/stats.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace hgr {

namespace {

template <typename DegreeFn>
DegreeStats stats_over(Index n, DegreeFn deg) {
  DegreeStats s;
  if (n == 0) return s;
  s.min = deg(0);
  s.max = deg(0);
  long long total = 0;
  for (Index i = 0; i < n; ++i) {
    const Index d = deg(i);
    s.min = std::min(s.min, d);
    s.max = std::max(s.max, d);
    total += d;
  }
  s.avg = static_cast<double>(total) / static_cast<double>(n);
  return s;
}

}  // namespace

DegreeStats graph_degree_stats(const Graph& g) {
  return stats_over(g.num_vertices(), [&](Index v) { return g.degree(v); });
}

DegreeStats hypergraph_vertex_degree_stats(const Hypergraph& h) {
  return stats_over(h.num_vertices(),
                    [&](Index v) { return h.vertex_degree(VertexId{v}); });
}

DegreeStats hypergraph_net_size_stats(const Hypergraph& h) {
  return stats_over(h.num_nets(), [&](Index n) { return h.net_size(NetId{n}); });
}

std::string table1_row(const std::string& name, const Graph& g,
                       const std::string& application_area) {
  const DegreeStats d = graph_degree_stats(g);
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-14s %9d %10d %6d %6d %8.1f  %s",
                name.c_str(), g.num_vertices(), g.num_edges(), d.min, d.max,
                d.avg, application_area.c_str());
  return buf;
}

bool is_connected(const Graph& g) {
  const Index n = g.num_vertices();
  if (n == 0) return true;
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  std::vector<Index> stack{0};
  seen[0] = true;
  Index visited = 1;
  while (!stack.empty()) {
    const Index v = stack.back();
    stack.pop_back();
    for (const Index u : g.neighbors(v)) {
      if (!seen[static_cast<std::size_t>(u)]) {
        seen[static_cast<std::size_t>(u)] = true;
        ++visited;
        stack.push_back(u);
      }
    }
  }
  return visited == n;
}

}  // namespace hgr
