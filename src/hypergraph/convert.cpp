#include "hypergraph/convert.hpp"

#include <algorithm>
#include <vector>

#include "hypergraph/builder.hpp"

namespace hgr {

Hypergraph graph_to_hypergraph(const Graph& g) {
  HypergraphBuilder b(g.num_vertices());
  for (Index v = 0; v < g.num_vertices(); ++v) {
    b.set_vertex_weight(v, g.vertex_weight(v));
    b.set_vertex_size(v, g.vertex_size(v));
    const auto nbrs = g.neighbors(v);
    const auto ws = g.edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] > v) {  // each undirected edge once
        const Index pin_pair[2] = {v, nbrs[i]};
        b.add_net(std::span<const Index>(pin_pair, 2), ws[i]);
      }
    }
  }
  return b.finalize();
}

Hypergraph graph_to_column_net_hypergraph(const Graph& g) {
  HypergraphBuilder b(g.num_vertices());
  std::vector<Index> pins;
  for (Index v = 0; v < g.num_vertices(); ++v) {
    b.set_vertex_weight(v, g.vertex_weight(v));
    b.set_vertex_size(v, g.vertex_size(v));
    const auto nbrs = g.neighbors(v);
    pins.assign(nbrs.begin(), nbrs.end());
    pins.push_back(v);
    b.add_net(pins, 1);
  }
  return b.finalize();
}

Graph hypergraph_to_graph_clique(const Hypergraph& h, Index max_clique_size) {
  GraphBuilder b(h.num_vertices());
  for (const VertexId v : h.vertices()) {
    b.set_vertex_weight(v.v, h.vertex_weight(v));
    b.set_vertex_size(v.v, h.vertex_size(v));
  }
  for (const NetId n : h.nets()) {
    const auto ps = h.pins(n);
    const auto s = static_cast<Index>(ps.size());
    if (s < 2 || s > max_clique_size) continue;
    const Weight w = std::max<Weight>(1, h.net_cost(n) / (s - 1));
    for (std::size_t i = 0; i < ps.size(); ++i)
      for (std::size_t j = i + 1; j < ps.size(); ++j)
        b.add_edge(ps[i].v, ps[j].v, w);
  }
  return b.finalize();
}

}  // namespace hgr
