// Undirected weighted graph in CSR form: the substrate for the METIS-like
// baseline partitioner (paper Section 5 compares against ParMETIS).
//
// Vertices carry weight (load) and size (migration bytes), mirroring the
// hypergraph conventions so both models run on the same workloads.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace hgr {

class Graph {
 public:
  Graph() = default;

  /// CSR arrays; adjacency must be symmetric (u in adj(v) <=> v in adj(u)
  /// with equal edge weight). Prefer GraphBuilder.
  Graph(std::vector<Index> offsets, std::vector<Index> adjacency,
        std::vector<Weight> edge_weights, std::vector<Weight> vertex_weights,
        std::vector<Weight> vertex_sizes);

  Index num_vertices() const { return num_vertices_; }
  /// Number of undirected edges (each stored twice in CSR).
  Index num_edges() const { return static_cast<Index>(adjacency_.size()) / 2; }

  std::span<const Index> neighbors(Index v) const {
    HGR_DASSERT(v >= 0 && v < num_vertices_);
    return {adjacency_.data() + offsets_[static_cast<std::size_t>(v)],
            adjacency_.data() + offsets_[static_cast<std::size_t>(v) + 1]};
  }

  /// Edge weights aligned with neighbors(v).
  std::span<const Weight> edge_weights(Index v) const {
    HGR_DASSERT(v >= 0 && v < num_vertices_);
    return {edge_weights_.data() + offsets_[static_cast<std::size_t>(v)],
            edge_weights_.data() + offsets_[static_cast<std::size_t>(v) + 1]};
  }

  Index degree(Index v) const {
    return offsets_[static_cast<std::size_t>(v) + 1] -
           offsets_[static_cast<std::size_t>(v)];
  }

  Weight vertex_weight(Index v) const {
    return vertex_weight_[static_cast<std::size_t>(v)];
  }
  Weight vertex_size(Index v) const {
    return vertex_size_[static_cast<std::size_t>(v)];
  }
  std::span<const Weight> vertex_weights() const { return vertex_weight_; }
  std::span<const Weight> vertex_sizes() const { return vertex_size_; }
  Weight total_vertex_weight() const { return total_vertex_weight_; }

  void set_vertex_weight(Index v, Weight w);
  void set_vertex_size(Index v, Weight s);

  /// Abort on violated invariants (symmetry, ranges, non-negativity).
  void validate() const;

  std::string summary() const;

 private:
  Index num_vertices_ = 0;
  std::vector<Index> offsets_;
  std::vector<Index> adjacency_;
  std::vector<Weight> edge_weights_;
  std::vector<Weight> vertex_weight_;
  std::vector<Weight> vertex_size_;
  Weight total_vertex_weight_ = 0;
};

}  // namespace hgr
