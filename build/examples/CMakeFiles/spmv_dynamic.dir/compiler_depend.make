# Empty compiler generated dependencies file for spmv_dynamic.
# This may be replaced when dependencies are built.
