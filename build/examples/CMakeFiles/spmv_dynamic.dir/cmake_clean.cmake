file(REMOVE_RECURSE
  "CMakeFiles/spmv_dynamic.dir/spmv_dynamic.cpp.o"
  "CMakeFiles/spmv_dynamic.dir/spmv_dynamic.cpp.o.d"
  "spmv_dynamic"
  "spmv_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmv_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
