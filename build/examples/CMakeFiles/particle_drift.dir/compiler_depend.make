# Empty compiler generated dependencies file for particle_drift.
# This may be replaced when dependencies are built.
