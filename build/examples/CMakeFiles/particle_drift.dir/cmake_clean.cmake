file(REMOVE_RECURSE
  "CMakeFiles/particle_drift.dir/particle_drift.cpp.o"
  "CMakeFiles/particle_drift.dir/particle_drift.cpp.o.d"
  "particle_drift"
  "particle_drift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/particle_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
