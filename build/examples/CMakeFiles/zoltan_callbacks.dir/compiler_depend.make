# Empty compiler generated dependencies file for zoltan_callbacks.
# This may be replaced when dependencies are built.
