file(REMOVE_RECURSE
  "CMakeFiles/zoltan_callbacks.dir/zoltan_callbacks.cpp.o"
  "CMakeFiles/zoltan_callbacks.dir/zoltan_callbacks.cpp.o.d"
  "zoltan_callbacks"
  "zoltan_callbacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zoltan_callbacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
