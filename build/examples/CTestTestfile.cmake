# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_zoltan_callbacks "/root/repo/build/examples/zoltan_callbacks")
set_tests_properties(example_zoltan_callbacks PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_amr_simulation "/root/repo/build/examples/amr_simulation")
set_tests_properties(example_amr_simulation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
