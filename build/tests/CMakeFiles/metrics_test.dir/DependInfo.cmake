
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/metrics/balance_test.cpp" "tests/CMakeFiles/metrics_test.dir/metrics/balance_test.cpp.o" "gcc" "tests/CMakeFiles/metrics_test.dir/metrics/balance_test.cpp.o.d"
  "/root/repo/tests/metrics/cost_model_test.cpp" "tests/CMakeFiles/metrics_test.dir/metrics/cost_model_test.cpp.o" "gcc" "tests/CMakeFiles/metrics_test.dir/metrics/cost_model_test.cpp.o.d"
  "/root/repo/tests/metrics/cut_test.cpp" "tests/CMakeFiles/metrics_test.dir/metrics/cut_test.cpp.o" "gcc" "tests/CMakeFiles/metrics_test.dir/metrics/cut_test.cpp.o.d"
  "/root/repo/tests/metrics/migration_test.cpp" "tests/CMakeFiles/metrics_test.dir/metrics/migration_test.cpp.o" "gcc" "tests/CMakeFiles/metrics_test.dir/metrics/migration_test.cpp.o.d"
  "/root/repo/tests/metrics/partition_io_test.cpp" "tests/CMakeFiles/metrics_test.dir/metrics/partition_io_test.cpp.o" "gcc" "tests/CMakeFiles/metrics_test.dir/metrics/partition_io_test.cpp.o.d"
  "/root/repo/tests/metrics/remap_optimal_test.cpp" "tests/CMakeFiles/metrics_test.dir/metrics/remap_optimal_test.cpp.o" "gcc" "tests/CMakeFiles/metrics_test.dir/metrics/remap_optimal_test.cpp.o.d"
  "/root/repo/tests/metrics/report_test.cpp" "tests/CMakeFiles/metrics_test.dir/metrics/report_test.cpp.o" "gcc" "tests/CMakeFiles/metrics_test.dir/metrics/report_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hgr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
