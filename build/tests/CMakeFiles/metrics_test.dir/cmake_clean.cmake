file(REMOVE_RECURSE
  "CMakeFiles/metrics_test.dir/metrics/balance_test.cpp.o"
  "CMakeFiles/metrics_test.dir/metrics/balance_test.cpp.o.d"
  "CMakeFiles/metrics_test.dir/metrics/cost_model_test.cpp.o"
  "CMakeFiles/metrics_test.dir/metrics/cost_model_test.cpp.o.d"
  "CMakeFiles/metrics_test.dir/metrics/cut_test.cpp.o"
  "CMakeFiles/metrics_test.dir/metrics/cut_test.cpp.o.d"
  "CMakeFiles/metrics_test.dir/metrics/migration_test.cpp.o"
  "CMakeFiles/metrics_test.dir/metrics/migration_test.cpp.o.d"
  "CMakeFiles/metrics_test.dir/metrics/partition_io_test.cpp.o"
  "CMakeFiles/metrics_test.dir/metrics/partition_io_test.cpp.o.d"
  "CMakeFiles/metrics_test.dir/metrics/remap_optimal_test.cpp.o"
  "CMakeFiles/metrics_test.dir/metrics/remap_optimal_test.cpp.o.d"
  "CMakeFiles/metrics_test.dir/metrics/report_test.cpp.o"
  "CMakeFiles/metrics_test.dir/metrics/report_test.cpp.o.d"
  "metrics_test"
  "metrics_test.pdb"
  "metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
