
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/determinism_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/determinism_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/determinism_test.cpp.o.d"
  "/root/repo/tests/integration/optimality_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/optimality_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/optimality_test.cpp.o.d"
  "/root/repo/tests/integration/pipeline_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/pipeline_test.cpp.o.d"
  "/root/repo/tests/integration/property_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/property_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/property_test.cpp.o.d"
  "/root/repo/tests/integration/trends_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/trends_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/trends_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hgr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
