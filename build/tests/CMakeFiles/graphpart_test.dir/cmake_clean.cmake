file(REMOVE_RECURSE
  "CMakeFiles/graphpart_test.dir/graphpart/adaptive_repart_test.cpp.o"
  "CMakeFiles/graphpart_test.dir/graphpart/adaptive_repart_test.cpp.o.d"
  "CMakeFiles/graphpart_test.dir/graphpart/diffusion_test.cpp.o"
  "CMakeFiles/graphpart_test.dir/graphpart/diffusion_test.cpp.o.d"
  "CMakeFiles/graphpart_test.dir/graphpart/gcoarsen_test.cpp.o"
  "CMakeFiles/graphpart_test.dir/graphpart/gcoarsen_test.cpp.o.d"
  "CMakeFiles/graphpart_test.dir/graphpart/ginitial_test.cpp.o"
  "CMakeFiles/graphpart_test.dir/graphpart/ginitial_test.cpp.o.d"
  "CMakeFiles/graphpart_test.dir/graphpart/gpartitioner_test.cpp.o"
  "CMakeFiles/graphpart_test.dir/graphpart/gpartitioner_test.cpp.o.d"
  "CMakeFiles/graphpart_test.dir/graphpart/grefine_test.cpp.o"
  "CMakeFiles/graphpart_test.dir/graphpart/grefine_test.cpp.o.d"
  "CMakeFiles/graphpart_test.dir/graphpart/scratch_remap_test.cpp.o"
  "CMakeFiles/graphpart_test.dir/graphpart/scratch_remap_test.cpp.o.d"
  "graphpart_test"
  "graphpart_test.pdb"
  "graphpart_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphpart_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
