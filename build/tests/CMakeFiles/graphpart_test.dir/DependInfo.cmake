
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/graphpart/adaptive_repart_test.cpp" "tests/CMakeFiles/graphpart_test.dir/graphpart/adaptive_repart_test.cpp.o" "gcc" "tests/CMakeFiles/graphpart_test.dir/graphpart/adaptive_repart_test.cpp.o.d"
  "/root/repo/tests/graphpart/diffusion_test.cpp" "tests/CMakeFiles/graphpart_test.dir/graphpart/diffusion_test.cpp.o" "gcc" "tests/CMakeFiles/graphpart_test.dir/graphpart/diffusion_test.cpp.o.d"
  "/root/repo/tests/graphpart/gcoarsen_test.cpp" "tests/CMakeFiles/graphpart_test.dir/graphpart/gcoarsen_test.cpp.o" "gcc" "tests/CMakeFiles/graphpart_test.dir/graphpart/gcoarsen_test.cpp.o.d"
  "/root/repo/tests/graphpart/ginitial_test.cpp" "tests/CMakeFiles/graphpart_test.dir/graphpart/ginitial_test.cpp.o" "gcc" "tests/CMakeFiles/graphpart_test.dir/graphpart/ginitial_test.cpp.o.d"
  "/root/repo/tests/graphpart/gpartitioner_test.cpp" "tests/CMakeFiles/graphpart_test.dir/graphpart/gpartitioner_test.cpp.o" "gcc" "tests/CMakeFiles/graphpart_test.dir/graphpart/gpartitioner_test.cpp.o.d"
  "/root/repo/tests/graphpart/grefine_test.cpp" "tests/CMakeFiles/graphpart_test.dir/graphpart/grefine_test.cpp.o" "gcc" "tests/CMakeFiles/graphpart_test.dir/graphpart/grefine_test.cpp.o.d"
  "/root/repo/tests/graphpart/scratch_remap_test.cpp" "tests/CMakeFiles/graphpart_test.dir/graphpart/scratch_remap_test.cpp.o" "gcc" "tests/CMakeFiles/graphpart_test.dir/graphpart/scratch_remap_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hgr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
