# Empty dependencies file for graphpart_test.
# This may be replaced when dependencies are built.
