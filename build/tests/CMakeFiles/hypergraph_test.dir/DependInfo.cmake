
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hypergraph/builder_test.cpp" "tests/CMakeFiles/hypergraph_test.dir/hypergraph/builder_test.cpp.o" "gcc" "tests/CMakeFiles/hypergraph_test.dir/hypergraph/builder_test.cpp.o.d"
  "/root/repo/tests/hypergraph/convert_test.cpp" "tests/CMakeFiles/hypergraph_test.dir/hypergraph/convert_test.cpp.o" "gcc" "tests/CMakeFiles/hypergraph_test.dir/hypergraph/convert_test.cpp.o.d"
  "/root/repo/tests/hypergraph/graph_test.cpp" "tests/CMakeFiles/hypergraph_test.dir/hypergraph/graph_test.cpp.o" "gcc" "tests/CMakeFiles/hypergraph_test.dir/hypergraph/graph_test.cpp.o.d"
  "/root/repo/tests/hypergraph/hypergraph_test.cpp" "tests/CMakeFiles/hypergraph_test.dir/hypergraph/hypergraph_test.cpp.o" "gcc" "tests/CMakeFiles/hypergraph_test.dir/hypergraph/hypergraph_test.cpp.o.d"
  "/root/repo/tests/hypergraph/io_test.cpp" "tests/CMakeFiles/hypergraph_test.dir/hypergraph/io_test.cpp.o" "gcc" "tests/CMakeFiles/hypergraph_test.dir/hypergraph/io_test.cpp.o.d"
  "/root/repo/tests/hypergraph/stats_test.cpp" "tests/CMakeFiles/hypergraph_test.dir/hypergraph/stats_test.cpp.o" "gcc" "tests/CMakeFiles/hypergraph_test.dir/hypergraph/stats_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hgr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
