
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/parallel/comm_stress_test.cpp" "tests/CMakeFiles/parallel_test.dir/parallel/comm_stress_test.cpp.o" "gcc" "tests/CMakeFiles/parallel_test.dir/parallel/comm_stress_test.cpp.o.d"
  "/root/repo/tests/parallel/comm_test.cpp" "tests/CMakeFiles/parallel_test.dir/parallel/comm_test.cpp.o" "gcc" "tests/CMakeFiles/parallel_test.dir/parallel/comm_test.cpp.o.d"
  "/root/repo/tests/parallel/dist_app_test.cpp" "tests/CMakeFiles/parallel_test.dir/parallel/dist_app_test.cpp.o" "gcc" "tests/CMakeFiles/parallel_test.dir/parallel/dist_app_test.cpp.o.d"
  "/root/repo/tests/parallel/par_ipm_test.cpp" "tests/CMakeFiles/parallel_test.dir/parallel/par_ipm_test.cpp.o" "gcc" "tests/CMakeFiles/parallel_test.dir/parallel/par_ipm_test.cpp.o.d"
  "/root/repo/tests/parallel/par_partitioner_test.cpp" "tests/CMakeFiles/parallel_test.dir/parallel/par_partitioner_test.cpp.o" "gcc" "tests/CMakeFiles/parallel_test.dir/parallel/par_partitioner_test.cpp.o.d"
  "/root/repo/tests/parallel/par_refine_test.cpp" "tests/CMakeFiles/parallel_test.dir/parallel/par_refine_test.cpp.o" "gcc" "tests/CMakeFiles/parallel_test.dir/parallel/par_refine_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hgr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
