
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/alpha_advisor_test.cpp" "tests/CMakeFiles/core_test.dir/core/alpha_advisor_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/alpha_advisor_test.cpp.o.d"
  "/root/repo/tests/core/callback_api_test.cpp" "tests/CMakeFiles/core_test.dir/core/callback_api_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/callback_api_test.cpp.o.d"
  "/root/repo/tests/core/epoch_driver_test.cpp" "tests/CMakeFiles/core_test.dir/core/epoch_driver_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/epoch_driver_test.cpp.o.d"
  "/root/repo/tests/core/migration_plan_test.cpp" "tests/CMakeFiles/core_test.dir/core/migration_plan_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/migration_plan_test.cpp.o.d"
  "/root/repo/tests/core/paper_example_test.cpp" "tests/CMakeFiles/core_test.dir/core/paper_example_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/paper_example_test.cpp.o.d"
  "/root/repo/tests/core/repartition_model_test.cpp" "tests/CMakeFiles/core_test.dir/core/repartition_model_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/repartition_model_test.cpp.o.d"
  "/root/repo/tests/core/repartitioner_test.cpp" "tests/CMakeFiles/core_test.dir/core/repartitioner_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/repartitioner_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hgr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
