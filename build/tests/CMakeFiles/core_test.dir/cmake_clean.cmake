file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/alpha_advisor_test.cpp.o"
  "CMakeFiles/core_test.dir/core/alpha_advisor_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/callback_api_test.cpp.o"
  "CMakeFiles/core_test.dir/core/callback_api_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/epoch_driver_test.cpp.o"
  "CMakeFiles/core_test.dir/core/epoch_driver_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/migration_plan_test.cpp.o"
  "CMakeFiles/core_test.dir/core/migration_plan_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/paper_example_test.cpp.o"
  "CMakeFiles/core_test.dir/core/paper_example_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/repartition_model_test.cpp.o"
  "CMakeFiles/core_test.dir/core/repartition_model_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/repartitioner_test.cpp.o"
  "CMakeFiles/core_test.dir/core/repartitioner_test.cpp.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
