file(REMOVE_RECURSE
  "CMakeFiles/partition_test.dir/partition/contract_test.cpp.o"
  "CMakeFiles/partition_test.dir/partition/contract_test.cpp.o.d"
  "CMakeFiles/partition_test.dir/partition/fixed_vertices_test.cpp.o"
  "CMakeFiles/partition_test.dir/partition/fixed_vertices_test.cpp.o.d"
  "CMakeFiles/partition_test.dir/partition/gain_queue_test.cpp.o"
  "CMakeFiles/partition_test.dir/partition/gain_queue_test.cpp.o.d"
  "CMakeFiles/partition_test.dir/partition/initial_test.cpp.o"
  "CMakeFiles/partition_test.dir/partition/initial_test.cpp.o.d"
  "CMakeFiles/partition_test.dir/partition/kway_refine_test.cpp.o"
  "CMakeFiles/partition_test.dir/partition/kway_refine_test.cpp.o.d"
  "CMakeFiles/partition_test.dir/partition/matching_ipm_test.cpp.o"
  "CMakeFiles/partition_test.dir/partition/matching_ipm_test.cpp.o.d"
  "CMakeFiles/partition_test.dir/partition/partitioner_test.cpp.o"
  "CMakeFiles/partition_test.dir/partition/partitioner_test.cpp.o.d"
  "CMakeFiles/partition_test.dir/partition/pathological_test.cpp.o"
  "CMakeFiles/partition_test.dir/partition/pathological_test.cpp.o.d"
  "CMakeFiles/partition_test.dir/partition/refine_fm_test.cpp.o"
  "CMakeFiles/partition_test.dir/partition/refine_fm_test.cpp.o.d"
  "partition_test"
  "partition_test.pdb"
  "partition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
