
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/partition/contract_test.cpp" "tests/CMakeFiles/partition_test.dir/partition/contract_test.cpp.o" "gcc" "tests/CMakeFiles/partition_test.dir/partition/contract_test.cpp.o.d"
  "/root/repo/tests/partition/fixed_vertices_test.cpp" "tests/CMakeFiles/partition_test.dir/partition/fixed_vertices_test.cpp.o" "gcc" "tests/CMakeFiles/partition_test.dir/partition/fixed_vertices_test.cpp.o.d"
  "/root/repo/tests/partition/gain_queue_test.cpp" "tests/CMakeFiles/partition_test.dir/partition/gain_queue_test.cpp.o" "gcc" "tests/CMakeFiles/partition_test.dir/partition/gain_queue_test.cpp.o.d"
  "/root/repo/tests/partition/initial_test.cpp" "tests/CMakeFiles/partition_test.dir/partition/initial_test.cpp.o" "gcc" "tests/CMakeFiles/partition_test.dir/partition/initial_test.cpp.o.d"
  "/root/repo/tests/partition/kway_refine_test.cpp" "tests/CMakeFiles/partition_test.dir/partition/kway_refine_test.cpp.o" "gcc" "tests/CMakeFiles/partition_test.dir/partition/kway_refine_test.cpp.o.d"
  "/root/repo/tests/partition/matching_ipm_test.cpp" "tests/CMakeFiles/partition_test.dir/partition/matching_ipm_test.cpp.o" "gcc" "tests/CMakeFiles/partition_test.dir/partition/matching_ipm_test.cpp.o.d"
  "/root/repo/tests/partition/partitioner_test.cpp" "tests/CMakeFiles/partition_test.dir/partition/partitioner_test.cpp.o" "gcc" "tests/CMakeFiles/partition_test.dir/partition/partitioner_test.cpp.o.d"
  "/root/repo/tests/partition/pathological_test.cpp" "tests/CMakeFiles/partition_test.dir/partition/pathological_test.cpp.o" "gcc" "tests/CMakeFiles/partition_test.dir/partition/pathological_test.cpp.o.d"
  "/root/repo/tests/partition/refine_fm_test.cpp" "tests/CMakeFiles/partition_test.dir/partition/refine_fm_test.cpp.o" "gcc" "tests/CMakeFiles/partition_test.dir/partition/refine_fm_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hgr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
