file(REMOVE_RECURSE
  "libhgr.a"
)
