
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/timer.cpp" "src/CMakeFiles/hgr.dir/common/timer.cpp.o" "gcc" "src/CMakeFiles/hgr.dir/common/timer.cpp.o.d"
  "/root/repo/src/core/alpha_advisor.cpp" "src/CMakeFiles/hgr.dir/core/alpha_advisor.cpp.o" "gcc" "src/CMakeFiles/hgr.dir/core/alpha_advisor.cpp.o.d"
  "/root/repo/src/core/callback_api.cpp" "src/CMakeFiles/hgr.dir/core/callback_api.cpp.o" "gcc" "src/CMakeFiles/hgr.dir/core/callback_api.cpp.o.d"
  "/root/repo/src/core/epoch_driver.cpp" "src/CMakeFiles/hgr.dir/core/epoch_driver.cpp.o" "gcc" "src/CMakeFiles/hgr.dir/core/epoch_driver.cpp.o.d"
  "/root/repo/src/core/migration_plan.cpp" "src/CMakeFiles/hgr.dir/core/migration_plan.cpp.o" "gcc" "src/CMakeFiles/hgr.dir/core/migration_plan.cpp.o.d"
  "/root/repo/src/core/repartition_model.cpp" "src/CMakeFiles/hgr.dir/core/repartition_model.cpp.o" "gcc" "src/CMakeFiles/hgr.dir/core/repartition_model.cpp.o.d"
  "/root/repo/src/core/repartitioner.cpp" "src/CMakeFiles/hgr.dir/core/repartitioner.cpp.o" "gcc" "src/CMakeFiles/hgr.dir/core/repartitioner.cpp.o.d"
  "/root/repo/src/graphpart/adaptive_repart.cpp" "src/CMakeFiles/hgr.dir/graphpart/adaptive_repart.cpp.o" "gcc" "src/CMakeFiles/hgr.dir/graphpart/adaptive_repart.cpp.o.d"
  "/root/repo/src/graphpart/diffusion.cpp" "src/CMakeFiles/hgr.dir/graphpart/diffusion.cpp.o" "gcc" "src/CMakeFiles/hgr.dir/graphpart/diffusion.cpp.o.d"
  "/root/repo/src/graphpart/gcoarsen.cpp" "src/CMakeFiles/hgr.dir/graphpart/gcoarsen.cpp.o" "gcc" "src/CMakeFiles/hgr.dir/graphpart/gcoarsen.cpp.o.d"
  "/root/repo/src/graphpart/ginitial.cpp" "src/CMakeFiles/hgr.dir/graphpart/ginitial.cpp.o" "gcc" "src/CMakeFiles/hgr.dir/graphpart/ginitial.cpp.o.d"
  "/root/repo/src/graphpart/gpartitioner.cpp" "src/CMakeFiles/hgr.dir/graphpart/gpartitioner.cpp.o" "gcc" "src/CMakeFiles/hgr.dir/graphpart/gpartitioner.cpp.o.d"
  "/root/repo/src/graphpart/grefine.cpp" "src/CMakeFiles/hgr.dir/graphpart/grefine.cpp.o" "gcc" "src/CMakeFiles/hgr.dir/graphpart/grefine.cpp.o.d"
  "/root/repo/src/graphpart/scratch_remap.cpp" "src/CMakeFiles/hgr.dir/graphpart/scratch_remap.cpp.o" "gcc" "src/CMakeFiles/hgr.dir/graphpart/scratch_remap.cpp.o.d"
  "/root/repo/src/hypergraph/builder.cpp" "src/CMakeFiles/hgr.dir/hypergraph/builder.cpp.o" "gcc" "src/CMakeFiles/hgr.dir/hypergraph/builder.cpp.o.d"
  "/root/repo/src/hypergraph/convert.cpp" "src/CMakeFiles/hgr.dir/hypergraph/convert.cpp.o" "gcc" "src/CMakeFiles/hgr.dir/hypergraph/convert.cpp.o.d"
  "/root/repo/src/hypergraph/graph.cpp" "src/CMakeFiles/hgr.dir/hypergraph/graph.cpp.o" "gcc" "src/CMakeFiles/hgr.dir/hypergraph/graph.cpp.o.d"
  "/root/repo/src/hypergraph/hypergraph.cpp" "src/CMakeFiles/hgr.dir/hypergraph/hypergraph.cpp.o" "gcc" "src/CMakeFiles/hgr.dir/hypergraph/hypergraph.cpp.o.d"
  "/root/repo/src/hypergraph/io.cpp" "src/CMakeFiles/hgr.dir/hypergraph/io.cpp.o" "gcc" "src/CMakeFiles/hgr.dir/hypergraph/io.cpp.o.d"
  "/root/repo/src/hypergraph/stats.cpp" "src/CMakeFiles/hgr.dir/hypergraph/stats.cpp.o" "gcc" "src/CMakeFiles/hgr.dir/hypergraph/stats.cpp.o.d"
  "/root/repo/src/metrics/balance.cpp" "src/CMakeFiles/hgr.dir/metrics/balance.cpp.o" "gcc" "src/CMakeFiles/hgr.dir/metrics/balance.cpp.o.d"
  "/root/repo/src/metrics/cost_model.cpp" "src/CMakeFiles/hgr.dir/metrics/cost_model.cpp.o" "gcc" "src/CMakeFiles/hgr.dir/metrics/cost_model.cpp.o.d"
  "/root/repo/src/metrics/cut.cpp" "src/CMakeFiles/hgr.dir/metrics/cut.cpp.o" "gcc" "src/CMakeFiles/hgr.dir/metrics/cut.cpp.o.d"
  "/root/repo/src/metrics/migration.cpp" "src/CMakeFiles/hgr.dir/metrics/migration.cpp.o" "gcc" "src/CMakeFiles/hgr.dir/metrics/migration.cpp.o.d"
  "/root/repo/src/metrics/partition_io.cpp" "src/CMakeFiles/hgr.dir/metrics/partition_io.cpp.o" "gcc" "src/CMakeFiles/hgr.dir/metrics/partition_io.cpp.o.d"
  "/root/repo/src/metrics/remap_optimal.cpp" "src/CMakeFiles/hgr.dir/metrics/remap_optimal.cpp.o" "gcc" "src/CMakeFiles/hgr.dir/metrics/remap_optimal.cpp.o.d"
  "/root/repo/src/metrics/report.cpp" "src/CMakeFiles/hgr.dir/metrics/report.cpp.o" "gcc" "src/CMakeFiles/hgr.dir/metrics/report.cpp.o.d"
  "/root/repo/src/parallel/comm.cpp" "src/CMakeFiles/hgr.dir/parallel/comm.cpp.o" "gcc" "src/CMakeFiles/hgr.dir/parallel/comm.cpp.o.d"
  "/root/repo/src/parallel/dist_app.cpp" "src/CMakeFiles/hgr.dir/parallel/dist_app.cpp.o" "gcc" "src/CMakeFiles/hgr.dir/parallel/dist_app.cpp.o.d"
  "/root/repo/src/parallel/par_coarsen.cpp" "src/CMakeFiles/hgr.dir/parallel/par_coarsen.cpp.o" "gcc" "src/CMakeFiles/hgr.dir/parallel/par_coarsen.cpp.o.d"
  "/root/repo/src/parallel/par_initial.cpp" "src/CMakeFiles/hgr.dir/parallel/par_initial.cpp.o" "gcc" "src/CMakeFiles/hgr.dir/parallel/par_initial.cpp.o.d"
  "/root/repo/src/parallel/par_ipm.cpp" "src/CMakeFiles/hgr.dir/parallel/par_ipm.cpp.o" "gcc" "src/CMakeFiles/hgr.dir/parallel/par_ipm.cpp.o.d"
  "/root/repo/src/parallel/par_partitioner.cpp" "src/CMakeFiles/hgr.dir/parallel/par_partitioner.cpp.o" "gcc" "src/CMakeFiles/hgr.dir/parallel/par_partitioner.cpp.o.d"
  "/root/repo/src/parallel/par_refine.cpp" "src/CMakeFiles/hgr.dir/parallel/par_refine.cpp.o" "gcc" "src/CMakeFiles/hgr.dir/parallel/par_refine.cpp.o.d"
  "/root/repo/src/partition/config.cpp" "src/CMakeFiles/hgr.dir/partition/config.cpp.o" "gcc" "src/CMakeFiles/hgr.dir/partition/config.cpp.o.d"
  "/root/repo/src/partition/contract.cpp" "src/CMakeFiles/hgr.dir/partition/contract.cpp.o" "gcc" "src/CMakeFiles/hgr.dir/partition/contract.cpp.o.d"
  "/root/repo/src/partition/initial.cpp" "src/CMakeFiles/hgr.dir/partition/initial.cpp.o" "gcc" "src/CMakeFiles/hgr.dir/partition/initial.cpp.o.d"
  "/root/repo/src/partition/kway_refine.cpp" "src/CMakeFiles/hgr.dir/partition/kway_refine.cpp.o" "gcc" "src/CMakeFiles/hgr.dir/partition/kway_refine.cpp.o.d"
  "/root/repo/src/partition/matching_ipm.cpp" "src/CMakeFiles/hgr.dir/partition/matching_ipm.cpp.o" "gcc" "src/CMakeFiles/hgr.dir/partition/matching_ipm.cpp.o.d"
  "/root/repo/src/partition/partitioner.cpp" "src/CMakeFiles/hgr.dir/partition/partitioner.cpp.o" "gcc" "src/CMakeFiles/hgr.dir/partition/partitioner.cpp.o.d"
  "/root/repo/src/partition/recursive_bisect.cpp" "src/CMakeFiles/hgr.dir/partition/recursive_bisect.cpp.o" "gcc" "src/CMakeFiles/hgr.dir/partition/recursive_bisect.cpp.o.d"
  "/root/repo/src/partition/refine_fm.cpp" "src/CMakeFiles/hgr.dir/partition/refine_fm.cpp.o" "gcc" "src/CMakeFiles/hgr.dir/partition/refine_fm.cpp.o.d"
  "/root/repo/src/workload/datasets.cpp" "src/CMakeFiles/hgr.dir/workload/datasets.cpp.o" "gcc" "src/CMakeFiles/hgr.dir/workload/datasets.cpp.o.d"
  "/root/repo/src/workload/experiment.cpp" "src/CMakeFiles/hgr.dir/workload/experiment.cpp.o" "gcc" "src/CMakeFiles/hgr.dir/workload/experiment.cpp.o.d"
  "/root/repo/src/workload/generators.cpp" "src/CMakeFiles/hgr.dir/workload/generators.cpp.o" "gcc" "src/CMakeFiles/hgr.dir/workload/generators.cpp.o.d"
  "/root/repo/src/workload/perturb.cpp" "src/CMakeFiles/hgr.dir/workload/perturb.cpp.o" "gcc" "src/CMakeFiles/hgr.dir/workload/perturb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
