# Empty compiler generated dependencies file for hgr.
# This may be replaced when dependencies are built.
