# Empty dependencies file for fig4_auto.
# This may be replaced when dependencies are built.
