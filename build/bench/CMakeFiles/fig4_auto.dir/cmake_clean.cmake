file(REMOVE_RECURSE
  "CMakeFiles/fig4_auto.dir/fig4_auto.cpp.o"
  "CMakeFiles/fig4_auto.dir/fig4_auto.cpp.o.d"
  "fig4_auto"
  "fig4_auto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_auto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
