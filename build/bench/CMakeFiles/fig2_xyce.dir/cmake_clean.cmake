file(REMOVE_RECURSE
  "CMakeFiles/fig2_xyce.dir/fig2_xyce.cpp.o"
  "CMakeFiles/fig2_xyce.dir/fig2_xyce.cpp.o.d"
  "fig2_xyce"
  "fig2_xyce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_xyce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
