# Empty dependencies file for fig2_xyce.
# This may be replaced when dependencies are built.
