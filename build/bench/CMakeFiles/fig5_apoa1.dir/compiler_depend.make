# Empty compiler generated dependencies file for fig5_apoa1.
# This may be replaced when dependencies are built.
