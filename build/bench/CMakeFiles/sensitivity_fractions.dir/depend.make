# Empty dependencies file for sensitivity_fractions.
# This may be replaced when dependencies are built.
