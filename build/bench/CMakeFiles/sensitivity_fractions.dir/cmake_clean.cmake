file(REMOVE_RECURSE
  "CMakeFiles/sensitivity_fractions.dir/sensitivity_fractions.cpp.o"
  "CMakeFiles/sensitivity_fractions.dir/sensitivity_fractions.cpp.o.d"
  "sensitivity_fractions"
  "sensitivity_fractions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensitivity_fractions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
