file(REMOVE_RECURSE
  "CMakeFiles/fig3_lipid.dir/fig3_lipid.cpp.o"
  "CMakeFiles/fig3_lipid.dir/fig3_lipid.cpp.o.d"
  "fig3_lipid"
  "fig3_lipid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_lipid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
