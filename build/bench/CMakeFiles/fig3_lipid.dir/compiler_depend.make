# Empty compiler generated dependencies file for fig3_lipid.
# This may be replaced when dependencies are built.
