# Empty compiler generated dependencies file for fig6_cage.
# This may be replaced when dependencies are built.
