file(REMOVE_RECURSE
  "CMakeFiles/fig6_cage.dir/fig6_cage.cpp.o"
  "CMakeFiles/fig6_cage.dir/fig6_cage.cpp.o.d"
  "fig6_cage"
  "fig6_cage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_cage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
