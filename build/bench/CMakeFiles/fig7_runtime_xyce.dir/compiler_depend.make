# Empty compiler generated dependencies file for fig7_runtime_xyce.
# This may be replaced when dependencies are built.
