file(REMOVE_RECURSE
  "CMakeFiles/fig7_runtime_xyce.dir/fig7_runtime_xyce.cpp.o"
  "CMakeFiles/fig7_runtime_xyce.dir/fig7_runtime_xyce.cpp.o.d"
  "fig7_runtime_xyce"
  "fig7_runtime_xyce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_runtime_xyce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
