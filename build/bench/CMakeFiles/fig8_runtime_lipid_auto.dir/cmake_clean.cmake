file(REMOVE_RECURSE
  "CMakeFiles/fig8_runtime_lipid_auto.dir/fig8_runtime_lipid_auto.cpp.o"
  "CMakeFiles/fig8_runtime_lipid_auto.dir/fig8_runtime_lipid_auto.cpp.o.d"
  "fig8_runtime_lipid_auto"
  "fig8_runtime_lipid_auto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_runtime_lipid_auto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
