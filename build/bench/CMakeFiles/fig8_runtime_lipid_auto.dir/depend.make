# Empty dependencies file for fig8_runtime_lipid_auto.
# This may be replaced when dependencies are built.
