file(REMOVE_RECURSE
  "CMakeFiles/hgr_cli.dir/hgr_cli.cpp.o"
  "CMakeFiles/hgr_cli.dir/hgr_cli.cpp.o.d"
  "hgr_cli"
  "hgr_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hgr_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
