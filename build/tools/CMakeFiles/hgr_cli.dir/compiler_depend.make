# Empty compiler generated dependencies file for hgr_cli.
# This may be replaced when dependencies are built.
