// hgr_serve — the resident repartitioning service (docs/SERVING.md).
//
//   hgr_serve [--k=4] [--alpha=100] [--eps=0.05] [--seed=1] [--threads=N]
//             [--ranks=P] [--queue-capacity=64] [--epoch-retries=N]
//             [--epoch-backoff=S] [--epoch-timeout=S]
//             [--fallback=keep-old|scratch] [--incremental=on|off|auto]
//             [--validate=off|cheap|paranoid] [--fault-plan=SPEC]
//             [--trace-json=FILE] [--stats-stream=FILE]
//
// Reads one request per line from stdin (LOAD / DELTA / ADD / REMOVE /
// SWAP / REPART — see src/serve/request.hpp) and writes one reply per
// request to stdout. Works equally over a FIFO or a socket wrapper
// (`nc -lU` / socat), keeping the daemon itself transport-free.
//
// Two daemon-level commands sidestep the queue:
//   STATS   reply immediately with queue depth + serve.* counter values
//   QUIT    drain the queue, reply "BYE", exit cleanly
// EOF on stdin behaves like QUIT. SIGUSR1 requests a stats-stream dump;
// an idle daemon flushes it from the serve idle loop (the fix this PR
// ships) rather than waiting for the next phase close.
#include <csignal>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "check/check_level.hpp"
#include "fault/fault_plan.hpp"
#include "obs/stats_stream.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"

namespace hgr {
namespace {

struct ServeOptions {
  serve::ServeConfig server;
  std::string trace_json_path;
  std::string stats_stream_path;
  std::string fault_plan_spec;
};

[[noreturn]] void usage(const char* why) {
  std::fprintf(stderr, "hgr_serve: %s\n", why);
  std::fprintf(
      stderr,
      "usage: hgr_serve [--k=N] [--alpha=A] [--eps=F] [--seed=S]\n"
      "                 [--threads=N] [--ranks=P] [--queue-capacity=N]\n"
      "                 [--epoch-retries=N] [--epoch-backoff=S]\n"
      "                 [--epoch-timeout=S] [--fallback=keep-old|scratch]\n"
      "                 [--incremental=on|off|auto]\n"
      "                 [--validate=off|cheap|paranoid] [--fault-plan=SPEC]\n"
      "                 [--trace-json=FILE] [--stats-stream=FILE]\n");
  std::exit(2);
}

ServeOptions parse(int argc, char** argv) {
  ServeOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value = eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "--k") {
      opt.server.default_k = static_cast<Index>(std::stol(value));
      if (opt.server.default_k < 2) usage("--k must be >= 2");
    } else if (key == "--alpha") {
      opt.server.default_alpha = static_cast<Weight>(std::stoll(value));
    } else if (key == "--eps") {
      opt.server.default_epsilon = std::stod(value);
    } else if (key == "--seed") {
      opt.server.seed = std::stoull(value);
    } else if (key == "--threads") {
      opt.server.num_threads = static_cast<Index>(std::stol(value));
      if (opt.server.num_threads < 1) usage("--threads must be >= 1");
    } else if (key == "--ranks") {
      opt.server.num_ranks = static_cast<int>(std::stol(value));
    } else if (key == "--queue-capacity") {
      opt.server.queue_capacity =
          static_cast<std::size_t>(std::stoul(value));
    } else if (key == "--epoch-retries") {
      opt.server.max_retries = static_cast<int>(std::stol(value));
    } else if (key == "--epoch-backoff") {
      opt.server.retry_backoff_seconds = std::stod(value);
    } else if (key == "--epoch-timeout") {
      opt.server.epoch_time_budget = std::stod(value);
    } else if (key == "--fallback") {
      if (value == "keep-old")
        opt.server.fallback = EpochFallback::kKeepOld;
      else if (value == "scratch")
        opt.server.fallback = EpochFallback::kScratch;
      else
        usage("bad --fallback (expected keep-old|scratch)");
    } else if (key == "--incremental") {
      if (value == "on")
        opt.server.incremental = IncrementalMode::kOn;
      else if (value == "off")
        opt.server.incremental = IncrementalMode::kOff;
      else if (value == "auto")
        opt.server.incremental = IncrementalMode::kAuto;
      else
        usage("bad --incremental mode (expected on|off|auto)");
    } else if (key == "--validate") {
      if (!check::parse_check_level(value, opt.server.check_level))
        usage("bad --validate level (expected off|cheap|paranoid)");
    } else if (key == "--fault-plan") {
      opt.fault_plan_spec = value;
    } else if (key == "--trace-json") {
      opt.trace_json_path = value;
    } else if (key == "--stats-stream") {
      opt.stats_stream_path = value;
    } else {
      usage(("unknown flag: " + arg).c_str());
    }
  }
  return opt;
}

std::string stats_line(const serve::Server& server) {
  const obs::Registry& reg = obs::global_registry();
  std::string out = "STATS queued=" + std::to_string(server.queue_depth()) +
                    " replied=" + std::to_string(server.replied());
  for (const char* name :
       {"serve.requests", "serve.batches", "serve.coalesced", "serve.shed",
        "serve.errors", "serve.degraded"}) {
    out += ' ';
    out += name;
    out += '=';
    out += std::to_string(reg.counter_value(name));
  }
  return out;
}

int run(const ServeOptions& opt) {
  serve::ServeConfig cfg = opt.server;
  if (!opt.fault_plan_spec.empty()) {
    try {
      cfg.fault_plan = std::make_shared<const fault::FaultPlan>(
          fault::FaultPlan::parse(opt.fault_plan_spec));
    } catch (const std::exception& e) {
      usage(e.what());
    }
  }
  serve::Server server(cfg, [](const std::string& reply) {
    std::printf("%s\n", reply.c_str());
    std::fflush(stdout);
  });
  std::fprintf(stderr, "hgr_serve ready (k=%d, queue=%zu)\n",
               cfg.default_k, cfg.queue_capacity);
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line == "QUIT") break;
    if (line == "STATS") {
      std::printf("%s\n", stats_line(server).c_str());
      std::fflush(stdout);
      continue;
    }
    server.submit(line);
  }
  server.shutdown();
  std::printf("BYE\n");
  std::fflush(stdout);
  return 0;
}

}  // namespace
}  // namespace hgr

int main(int argc, char** argv) {
  const hgr::ServeOptions opt = hgr::parse(argc, argv);
  if (!opt.stats_stream_path.empty()) {
    hgr::obs::set_stats_stream_enabled(true);
    hgr::obs::set_stats_stream_path(opt.stats_stream_path);
#ifdef SIGUSR1
    // `kill -USR1 <pid>` flushes the stats ring: at the next phase close
    // while busy, or from the serve idle loop while idle.
    std::signal(SIGUSR1, [](int) { hgr::obs::request_stats_dump(); });
#endif
  }
  const int rc = hgr::run(opt);
  // Exit paths flush everything a client might still want: any pending
  // triggered dump, the final ring contents, and the trace.
  if (!opt.stats_stream_path.empty()) {
    hgr::obs::set_stats_stream_enabled(false);  // flushes pending dumps
    hgr::obs::write_stats_stream(opt.stats_stream_path);
  }
  if (!opt.trace_json_path.empty()) {
    if (!hgr::obs::write_trace_json(opt.trace_json_path))
      std::fprintf(stderr, "failed to write trace to %s\n",
                   opt.trace_json_path.c_str());
  }
  return rc;
}
