#!/usr/bin/env python3
"""Render the critical-path section of an hgr-trace-v2 JSON dump.

The trace's "critical_path" section (src/obs/critical_path.hpp) retains one
span per repartition epoch with a per-rank, per-phase compute/wait
breakdown and a derived summary. This tool renders it the way the
load-balancing story is told: which rank bounded each epoch, in which
phase, and how much of that rank's time was spent blocked in the comm
layer.

Usage:
  tools/critical_path.py trace.json              # all spans
  tools/critical_path.py trace.json --epoch=7    # one epoch
  tools/critical_path.py trace.json --require-spans   # exit 1 if empty
"""

from __future__ import annotations

import argparse
import json
import sys


def fmt_seconds(s: float) -> str:
    if s >= 1.0:
        return f"{s:.3f}s"
    if s >= 1e-3:
        return f"{s * 1e3:.3f}ms"
    return f"{s * 1e6:.1f}us"


def render_span(span: dict) -> list[str]:
    epoch = span.get("epoch", -1)
    label = f"epoch {epoch}" if epoch >= 0 else f"span {span.get('span_id')}"
    wait_pct = 100.0 * float(span.get("wait_frac", 0.0))
    lines = [
        f"{label} bounded by rank {span.get('critical_rank')} "
        f"{span.get('critical_phase', '?')}, {wait_pct:.0f}% wait "
        f"(critical rank total {fmt_seconds(float(span.get('critical_seconds', 0.0)))}, "
        f"span {span.get('span_id')})"
    ]
    for rank in span.get("ranks", []):
        cells = []
        total = 0.0
        wait = 0.0
        for phase in rank.get("phases", []):
            seconds = float(phase.get("seconds", 0.0))
            wait_seconds = float(phase.get("wait_seconds", 0.0))
            total += seconds
            wait += wait_seconds
            cells.append(
                f"{phase.get('name', '?')} {fmt_seconds(seconds)} "
                f"(wait {fmt_seconds(wait_seconds)})"
            )
        marker = " <- critical" if rank.get("rank") == span.get("critical_rank") else ""
        lines.append(
            f"  rank {rank.get('rank')}: total {fmt_seconds(total)}, "
            f"wait {fmt_seconds(wait)} | " + " | ".join(cells) + marker
        )
    return lines


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="hgr-trace-v2 JSON file (hgr_cli --trace-json)")
    parser.add_argument("--epoch", type=int, default=None, help="render only this epoch")
    parser.add_argument(
        "--require-spans",
        action="store_true",
        help="exit 1 when the trace holds no critical-path spans (CI smoke)",
    )
    args = parser.parse_args()

    try:
        with open(args.trace, "r", encoding="utf-8") as f:
            trace = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"critical_path: cannot read {args.trace}: {e}", file=sys.stderr)
        return 2

    schema = trace.get("schema", "")
    if not schema.startswith("hgr-trace-"):
        print(f"critical_path: not an hgr trace (schema={schema!r})", file=sys.stderr)
        return 2
    if schema == "hgr-trace-v1":
        print(
            "critical_path: hgr-trace-v1 predates critical-path spans; "
            "re-run with a v2-emitting build",
            file=sys.stderr,
        )
        return 2

    section = trace.get("critical_path", {})
    spans = section.get("spans", [])
    if args.epoch is not None:
        spans = [s for s in spans if s.get("epoch") == args.epoch]

    if not spans:
        print("critical_path: no critical-path spans in trace")
        return 1 if args.require_spans else 0

    for span in spans:
        for line in render_span(span):
            print(line)
    return 0


if __name__ == "__main__":
    sys.exit(main())
