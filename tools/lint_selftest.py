#!/usr/bin/env python3
"""Self-test corpus for tools/hgr_lint.py (run as the LintSelfTest ctest).

Each case is (rule, relpath, snippet, expected finding count). The corpus
pins down both halves of every rule: the bad spelling is caught, the good
spelling (or the sanctioned suppression marker) is not. The regex engine
is always exercised; the AST engine is exercised only when python-libclang
and a compile database are available, since it is an optional upgrade
(exit code 77 = "AST engine unavailable" is mapped to SKIPPED by ctest).
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import hgr_lint  # noqa: E402

# (name, relative path inside the fake repo, source text, expected findings)
CASES = [
    # --- nondeterminism ---
    ("nondeterminism/bad", "src/core/x.cpp",
     "int f() { return rand(); }\n", 1),
    ("nondeterminism/bad-device", "src/core/x.cpp",
     "std::random_device rd;\n", 1),
    ("nondeterminism/good", "src/core/x.cpp",
     "Rng rng(cfg.seed);\nauto v = rng.below(4);\n", 0),
    # --- raw-new ---
    ("raw-new/bad", "src/core/x.cpp",
     "auto* p = new Widget(3);\n", 1),
    ("raw-new/good", "src/core/x.cpp",
     "auto p = std::make_unique<Widget>(3);\n", 0),
    # --- plain-assert ---
    ("plain-assert/bad", "src/core/x.cpp",
     "void f(int n) { assert(n > 0); }\n", 1),
    ("plain-assert/good", "src/core/x.cpp",
     "void f(int n) { HGR_ASSERT(n > 0); }\n", 0),
    # --- steady-clock (outside obs/) ---
    ("steady-clock/bad", "src/core/x.cpp",
     "auto t = std::chrono::steady_clock::now();\n", 1),
    ("steady-clock/good-obs", "src/obs/x.cpp",
     "auto t = std::chrono::steady_clock::now();\n", 0),
    ("steady-clock/good-timer", "src/core/x.cpp",
     "WallTimer timer;\ndouble s = timer.seconds();\n", 0),
    # --- raw-thread (everywhere but the pool and the comm layer) ---
    ("raw-thread/bad", "src/core/x.cpp",
     "std::thread t([] { work(); });\nt.join();\n", 1),
    ("raw-thread/bad-jthread", "src/core/x.cpp",
     "std::jthread t([] { work(); });\n", 1),
    ("raw-thread/bad-vector", "src/partition/x.cpp",
     "std::vector<std::thread> workers;\n", 1),
    ("raw-thread/good-pool-owner", "src/common/thread_pool.cpp",
     "std::thread worker([] { loop(); });\n", 0),
    ("raw-thread/good-comm-owner", "src/parallel/comm.cpp",
     "std::thread watchdog([] { loop(); });\n", 0),
    ("raw-thread/good-id", "src/obs/x.cpp",
     "std::map<std::thread::id, int> stacks;\n"
     "auto id = std::this_thread::get_id();\n", 0),
    ("raw-thread/good-marker", "src/core/x.cpp",
     "std::thread t(f);  // hgr-lint: thread-ok (reason)\n", 0),
    # --- ragged-comm (only parallel/ and partition/) ---
    ("ragged-comm/bad", "src/parallel/x.cpp",
     "std::vector<std::vector<int>> rows;\n", 1),
    ("ragged-comm/good-layer", "src/metrics/x.cpp",
     "std::vector<std::vector<int>> rows;\n", 0),
    ("ragged-comm/good-marker", "src/parallel/x.cpp",
     "std::vector<std::vector<int>> rows;  // hgr-lint: ragged-ok\n", 0),
    # --- swallowed-failure ---
    ("swallowed-failure/bad", "src/parallel/x.cpp",
     "void f() {\n  try { g(); } catch (...) {\n    log();\n  }\n}\n", 1),
    ("swallowed-failure/good-rethrow", "src/parallel/x.cpp",
     "void f() {\n  try { g(); } catch (...) {\n    throw;\n  }\n}\n", 0),
    ("swallowed-failure/good-marker", "src/parallel/x.cpp",
     "void f() {\n  try { g(); } catch (...) {"
     "  // hgr-lint: swallow-ok\n  }\n}\n", 0),
    # --- counter-in-loop (src/ only) ---
    ("counter-in-loop/bad-for", "src/core/x.cpp",
     "void f() {\n  for (int i = 0; i < n; ++i) {\n"
     "    obs::counter(\"epoch.count\") += 1;\n  }\n}\n", 1),
    ("counter-in-loop/bad-while", "src/core/x.cpp",
     "void f() {\n  while (pending()) {\n"
     "    obs::counter(\"epoch.count\") += 1;\n  }\n}\n", 1),
    ("counter-in-loop/bad-braceless", "src/core/x.cpp",
     "void f() {\n  for (int i = 0; i < n; ++i)\n"
     "    obs::counter(\"epoch.count\") += 1;\n}\n", 1),
    ("counter-in-loop/good-cached", "src/core/x.cpp",
     "void f() {\n  static obs::CachedCounter c(\"epoch.count\");\n"
     "  for (int i = 0; i < n; ++i) {\n    c += 1;\n  }\n}\n", 0),
    ("counter-in-loop/good-outside", "src/core/x.cpp",
     "void f() {\n  for (int i = 0; i < n; ++i) {\n    work(i);\n  }\n"
     "  obs::counter(\"epoch.count\") += n;\n}\n", 0),
    ("counter-in-loop/good-lambda-in-call", "src/core/x.cpp",
     "void f() {\n  run([&] {\n    obs::counter(\"epoch.count\") += 1;\n"
     "  });\n}\n", 0),
    ("counter-in-loop/good-marker", "src/core/x.cpp",
     "void f() {\n  for (int i = 0; i < n; ++i) {\n"
     "    obs::counter(name(i)) += 1;  // hgr-lint: counter-ok\n  }\n}\n", 0),
    ("counter-in-loop/good-tools-scope", "tools/x.cpp",
     "void f() {\n  for (int i = 0; i < n; ++i) {\n"
     "    obs::counter(\"epoch.count\") += 1;\n  }\n}\n", 0),
    # --- raw-escape ---
    ("raw-escape/bad-to-raw", "src/partition/x.cpp",
     "const Index i = to_raw(v);\n", 1),
    ("raw-escape/bad-from-raw", "src/partition/x.cpp",
     "const VertexId v = from_raw<VertexId>(i);\n", 1),
    ("raw-escape/bad-member", "src/partition/x.cpp",
     "auto& storage = weights.raw();\n", 1),
    ("raw-escape/good-allowlist", "src/parallel/x.cpp",
     "const Index i = to_raw(v);\n", 0),
    ("raw-escape/good-tools", "tools/x.cpp",
     "const Index i = to_raw(v);\n", 0),
    ("raw-escape/good-marker", "src/partition/x.cpp",
     "auto& s = weights.raw();  // hgr-lint: raw-ok (reason)\n", 0),
    ("raw-escape/good-marker-stmt", "src/partition/x.cpp",
     "// hgr-lint: raw-ok (constructor handoff)\n"
     "H h(std::move(weights.raw()),\n    std::move(sizes.raw()));\n", 0),
    ("raw-escape/marker-expires-after-stmt", "src/partition/x.cpp",
     "// hgr-lint: raw-ok (first statement only)\n"
     "auto& a = weights.raw();\n"
     "auto& b = sizes.raw();\n", 1),
    # --- raw-subscript ---
    # src/parallel/ is exempt from raw-escape but NOT from raw-subscript:
    # even at the comm boundary, indexing goes through the id type.
    ("raw-subscript/bad", "src/parallel/x.cpp",
     "const Weight w = weights.raw()[3];\n", 1),
    ("raw-subscript/bad-both-rules", "src/partition/x.cpp",
     "const Weight w = weights.raw()[3];\n", 2),
    ("raw-subscript/good", "src/partition/x.cpp",
     "const Weight w = weights[VertexId{3}];\n", 0),
    # --- weight-index-narrowing ---
    ("weight-index-narrowing/bad", "src/metrics/x.cpp",
     "const Index n = static_cast<Index>(total_weight / k);\n", 1),
    ("weight-index-narrowing/bad-accessor", "src/metrics/x.cpp",
     "const Index n = static_cast<Index>(h.total_vertex_weight());\n", 1),
    ("weight-index-narrowing/good-size", "src/metrics/x.cpp",
     "const Index n = static_cast<Index>(vertex_weights.size());\n", 0),
    ("weight-index-narrowing/good-widening", "src/metrics/x.cpp",
     "const Weight w = static_cast<Weight>(num_vertices);\n", 0),
    # --- global suppression ---
    ("allow/good", "src/core/x.cpp",
     "int x = rand();  // hgr-lint: allow\n", 0),
]


def run_regex_cases() -> int:
    failures = 0
    with tempfile.TemporaryDirectory() as tmp:
        for name, rel, text, expected in CASES:
            # Real subdirectories: several rules scope by path components
            # (obs/, parallel/, partition/), not by the relpath string.
            path = Path(tmp) / name.replace("/", "_") / rel
            path.parent.mkdir(parents=True)
            path.write_text(text)
            findings = hgr_lint.lint_file(path, rel)
            if len(findings) != expected:
                failures += 1
                print(f"FAIL [{name}]: expected {expected} finding(s), "
                      f"got {len(findings)}")
                for f in findings:
                    print("   " + f.splitlines()[0])
            else:
                print(f"ok   [{name}]")
    return failures


def run_exit_status_contract() -> int:
    """The CLI clamps its exit status to 0/1 and prints the count."""
    import subprocess
    lint = Path(__file__).resolve().parent / "hgr_lint.py"
    failures = 0
    with tempfile.TemporaryDirectory() as tmp:
        src = Path(tmp) / "src"
        src.mkdir()
        # Many findings in one file: exit must still be exactly 1.
        (src / "bad.cpp").write_text("int a = rand();\n" * 7)
        r = subprocess.run([sys.executable, str(lint), tmp],
                           capture_output=True, text=True)
        if r.returncode != 1:
            failures += 1
            print(f"FAIL [exit-status/dirty]: expected 1, got {r.returncode}")
        elif "7 finding(s)" not in r.stdout:
            failures += 1
            print("FAIL [exit-status/count]: summary must print the count:\n"
                  + r.stdout)
        else:
            print("ok   [exit-status/dirty]")
        (src / "bad.cpp").write_text("int a = 1;\n")
        r = subprocess.run([sys.executable, str(lint), tmp],
                           capture_output=True, text=True)
        if r.returncode != 0:
            failures += 1
            print(f"FAIL [exit-status/clean]: expected 0, got {r.returncode}")
        else:
            print("ok   [exit-status/clean]")
    return failures


def run_ast_cases(repo_root: Path) -> int | None:
    """Exercise the AST engine against the real tree; None = unavailable."""
    ast = hgr_lint.ast_engine_available(repo_root / "build")
    if ast is None:
        return None
    # The tree itself must be clean under the type-accurate engine too.
    import subprocess
    lint = Path(__file__).resolve().parent / "hgr_lint.py"
    r = subprocess.run(
        [sys.executable, str(lint), str(repo_root), "--engine=ast"],
        capture_output=True, text=True)
    if r.returncode != 0:
        print("FAIL [ast/tree-clean]:\n" + r.stdout + r.stderr)
        return 1
    if "hgr_lint[ast]" not in r.stdout:
        print("FAIL [ast/engine-tag]: expected the ast engine to run:\n"
              + r.stdout)
        return 1
    print("ok   [ast/tree-clean]")
    return 0


def main() -> int:
    failures = run_regex_cases()
    failures += run_exit_status_contract()
    repo_root = Path(__file__).resolve().parent.parent
    ast_result = run_ast_cases(repo_root)
    if ast_result is None:
        print("note: AST engine unavailable (python-libclang not installed "
              "or no compile_commands.json); regex engine covered.")
        if failures == 0 and "--require-ast" in sys.argv:
            return 77  # ctest SKIP_RETURN_CODE
    else:
        failures += ast_result
    if failures:
        print(f"lint_selftest: {failures} failure(s)")
        return 1
    print("lint_selftest: all cases passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
