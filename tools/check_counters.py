#!/usr/bin/env python3
"""Cross-check observability counter names against their consumers.

Three artifacts must agree (docs/OBSERVABILITY.md, "Counter registry"):

  1. Counter literals in src/ — every `obs::counter("name")` and
     `obs::CachedCounter handle("name")` call site.
  2. The "Counter registry" table in docs/OBSERVABILITY.md.
  3. The TRACKED metric list in tools/bench_report.py, whose entries must
     resolve to a metric some bench/ binary actually emits.

Checks (each failure is one line on stdout; exit 1 on any):

  counters <-> docs   BOTH directions. A counter bumped in src/ but absent
                      from the registry table is drift; so is a registry
                      row whose counter no longer exists in src/.
  TRACKED -> bench    Every TRACKED path under `metrics.` must match a
                      metric key literal in bench/*.cpp. Keys built
                      dynamically with the `_p<N>` rank-suffix convention
                      (micro_comm) match when the stem and suffix both
                      appear as literals.

Usage: check_counters.py [repo-root]
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

COUNTER_CALL = re.compile(
    r'(?:obs::counter|CachedCounter(?:\s+\w+)?)\s*\(\s*"([^"]+)"')
REGISTRY_ROW = re.compile(r"^\|\s*`([a-z_0-9.]+)`\s*\|")
RANK_SUFFIX = re.compile(r"^(?P<stem>.+)_p\d+(?P<suffix>_[a-z_]+)$")
LINE_COMMENT = re.compile(r"//.*$")


def source_counters(src: Path) -> dict[str, str]:
    """counter name -> first file that bumps it."""
    found: dict[str, str] = {}
    for path in sorted(src.rglob("*")):
        if path.suffix not in (".cpp", ".hpp"):
            continue
        # Strip line comments so doc examples (obs/trace.hpp) don't count,
        # then join lines: CachedCounter declarations wrap.
        code = "\n".join(LINE_COMMENT.sub("", ln)
                         for ln in path.read_text().splitlines())
        code = re.sub(r"\(\s*\n\s*", "(", code)
        for m in COUNTER_CALL.finditer(code):
            found.setdefault(m.group(1), str(path))
    return found


def documented_counters(doc_path: Path) -> set[str]:
    """Rows of the Counter registry table."""
    in_section = False
    names = set()
    for line in doc_path.read_text().splitlines():
        if line.startswith("## "):
            in_section = line.strip() == "## Counter registry"
            continue
        if in_section:
            m = REGISTRY_ROW.match(line)
            if m and m.group(1) != "counter":
                names.add(m.group(1))
    return names


def tracked_metrics(report_path: Path) -> list[str]:
    """First key under `metrics.` for each TRACKED entry, via the AST."""
    tree = ast.parse(report_path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "TRACKED"
                for t in node.targets):
            paths = []
            for elt in node.value.elts:  # list of (path, lower_better)
                dotted = elt.elts[0].value
                parts = dotted.split(".")
                if parts[0] == "metrics" and len(parts) > 1:
                    paths.append(parts[1])
            return paths
    raise SystemExit(f"check_counters: no TRACKED list in {report_path}")


def bench_literals(bench: Path) -> set[str]:
    """Every string literal fragment in bench sources."""
    frags = set()
    for path in sorted(bench.glob("*.cpp")):
        for m in re.finditer(r'"((?:[^"\\]|\\.)*)"', path.read_text()):
            # Unescape the \" JSON-key quoting used by the emitters.
            frags.add(m.group(1).replace('\\"', '"'))
    return frags


def metric_emitted(name: str, frags: set[str]) -> bool:
    joined = "\x00".join(frags)
    if name in joined:
        return True
    m = RANK_SUFFIX.match(name)  # micro_comm: "alltoallv_small" + "_p4..."
    if m:
        return m.group("stem") in joined and m.group("suffix") in joined
    return False


def main(argv: list[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(".")
    failures = []

    in_src = source_counters(root / "src")
    in_docs = documented_counters(root / "docs" / "OBSERVABILITY.md")
    for name in sorted(set(in_src) - in_docs):
        failures.append(
            f"counter `{name}` (bumped in {in_src[name]}) is missing from "
            "the Counter registry in docs/OBSERVABILITY.md")
    for name in sorted(in_docs - set(in_src)):
        failures.append(
            f"Counter registry row `{name}` has no matching counter in src/"
            " — remove the row or restore the counter")

    frags = bench_literals(root / "bench")
    for name in tracked_metrics(root / "tools" / "bench_report.py"):
        if not metric_emitted(name, frags):
            failures.append(
                f"TRACKED metric `metrics.{name}` in tools/bench_report.py "
                "is emitted by no bench/ binary")

    for f in failures:
        print(f"check_counters: {f}")
    print(f"check_counters: {len(in_src)} src counters, {len(in_docs)} "
          f"documented, {len(failures)} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
