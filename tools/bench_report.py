#!/usr/bin/env python3
"""Aggregate hgr-bench-v1 JSON documents into BENCH_partition.json.

Bench binaries emit one hgr-bench-v1 document each (bench/bench_json.hpp;
micro_partition --json=FILE, fig benches --json=FILE). This script folds a
set of them into one report at the repo root and diffs key timing metrics
against the previous report, flagging regressions above a threshold.

Usage:
  tools/bench_report.py RUN1.json [RUN2.json ...] [--out BENCH_partition.json]
                        [--check] [--threshold 0.25]

  --out        report path (default: BENCH_partition.json next to the
               repo root, i.e. the parent of this script's directory)
  --check      warn-only mode for CI: print WARN lines for regressions but
               always exit 0 (perf smoke must not gate merges on a noisy
               container)
  --threshold  relative slowdown that counts as a regression (default 0.25)

Without --check, the exit status is the number of regressions found.

Report schema ("hgr-bench-report-v1"): an "entries" map keyed by
"<bench>/<dataset>", each holding the source document's config, metrics or
cells, and a "comm" summary (per-rank send/recv byte totals, wait
fractions, send-byte imbalance) pulled from the embedded trace. A "diff"
section lists per-entry metric deltas vs. the previous report.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPORT_SCHEMA = "hgr-bench-report-v1"

# Metrics diffed between runs: (json path in entry, lower-is-better).
TRACKED = [
    ("metrics.partition_seconds.mean", True),
    ("metrics.repartition_seconds.mean", True),
    ("metrics.parallel_partition_seconds.mean", True),
    ("metrics.counter_bump_ns", True),
    ("metrics.cached_counter_bump_ns", True),
    # Observability v3: histogram hot path, total instrumentation overhead,
    # comm-latency tail, and critical-path wait fraction (micro_partition).
    ("metrics.histogram_record_ns", True),
    ("metrics.obs_overhead_pct", True),
    ("metrics.comm_latency_p99_ns", True),
    ("metrics.epoch_wait_frac", True),
    # micro_comm (flat-buffer collectives; absent from partition runs).
    ("metrics.alltoallv_small_p4_ns_per_call", True),
    ("metrics.alltoallv_large_p4_ns_per_call", True),
    ("metrics.alltoallv_ragged_small_p4_ns_per_call", True),
    ("metrics.allgather_large_p4_ns_per_call", True),
    ("metrics.allreduce_p4_ns_per_call", True),
    # micro_incremental (O(delta) fast path vs full V-cycle).
    ("metrics.full_seconds.mean", True),
    ("metrics.incremental_seconds.mean", True),
    ("metrics.incremental_speedup.mean", False),
    # parallel_scaling (thread-parallel kernels; single-thread baselines
    # plus the best 4-thread speedup across kernels).
    ("metrics.matching_seconds.t1.mean", True),
    ("metrics.contract_seconds.t1.mean", True),
    ("metrics.kway_seconds.t1.mean", True),
    ("metrics.parallel_speedup_t4", False),
    # serve_throughput (hgr_serve core: coalescing burst + warm residency).
    ("metrics.serve_requests_per_s", False),
    ("metrics.serve_p99_latency_ns", True),
    ("metrics.warm_epoch_seconds.mean", True),
    ("metrics.warm_speedup", False),
]


def lookup(obj, dotted):
    for part in dotted.split("."):
        if not isinstance(obj, dict) or part not in obj:
            return None
        obj = obj[part]
    return obj


def comm_summary(doc):
    """Per-rank traffic/wait summary from the embedded trace, if present."""
    comm = lookup(doc, "trace.comm")
    if not comm:
        return None
    ranks = comm.get("ranks", [])
    return {
        "num_ranks": comm.get("num_ranks", 0),
        "send_byte_imbalance": comm.get("send_byte_imbalance", 0.0),
        "max_wait_fraction": comm.get("max_wait_fraction", 0.0),
        "per_rank": [
            {
                "rank": r.get("rank"),
                "bytes_sent": r.get("bytes_sent", 0),
                "bytes_recv": r.get("bytes_recv", 0),
                "wait_fraction": r.get("wait_fraction", 0.0),
            }
            for r in ranks
        ],
    }


def build_report(run_paths):
    entries = {}
    for path in run_paths:
        with open(path) as f:
            doc = json.load(f)
        if doc.get("schema") != "hgr-bench-v1":
            print(f"WARN {path}: not an hgr-bench-v1 document, skipped",
                  file=sys.stderr)
            continue
        key = f"{doc.get('bench', 'unknown')}/{doc.get('dataset', 'unknown')}"
        entry = {
            "bench": doc.get("bench"),
            "dataset": doc.get("dataset"),
            "config": doc.get("config", {}),
        }
        if "metrics" in doc:
            entry["metrics"] = doc["metrics"]
        if "cells" in doc:
            entry["cells"] = doc["cells"]
        comm = comm_summary(doc)
        if comm is not None:
            entry["comm"] = comm
        counters = lookup(doc, "trace.counters")
        if counters:
            entry["counters"] = {
                k: v for k, v in counters.items()
                if k.startswith(("comm.", "epoch."))
            }
        entries[key] = entry
    return {"schema": REPORT_SCHEMA, "entries": entries}


def diff_reports(old, new, threshold):
    """Regression list + per-entry deltas of tracked metrics."""
    regressions = []
    deltas = {}
    for key, entry in new["entries"].items():
        prev = old.get("entries", {}).get(key)
        if prev is None:
            continue
        entry_deltas = {}
        for dotted, lower_better in TRACKED:
            was = lookup(prev, dotted)
            now = lookup(entry, dotted)
            if not isinstance(was, (int, float)) or not isinstance(
                    now, (int, float)) or was <= 0:
                continue
            rel = (now - was) / was
            entry_deltas[dotted] = {"was": was, "now": now, "rel": rel}
            worse = rel > threshold if lower_better else rel < -threshold
            if worse:
                regressions.append(
                    f"{key} {dotted}: {was:.6g} -> {now:.6g} "
                    f"({rel * 100.0:+.1f}%)")
        if entry_deltas:
            deltas[key] = entry_deltas
    return regressions, deltas


def main(argv):
    parser = argparse.ArgumentParser(
        description="aggregate hgr-bench-v1 JSON into BENCH_partition.json")
    parser.add_argument("runs", nargs="+", help="hgr-bench-v1 JSON files")
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent /
                    "BENCH_partition.json"))
    parser.add_argument("--check", action="store_true",
                        help="warn-only: report regressions, exit 0")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative slowdown counted as regression")
    args = parser.parse_args(argv)

    report = build_report(args.runs)
    if not report["entries"]:
        print("error: no usable hgr-bench-v1 inputs", file=sys.stderr)
        return 2

    out_path = Path(args.out)
    previous = None
    if out_path.exists():
        try:
            with open(out_path) as f:
                previous = json.load(f)
        except (OSError, json.JSONDecodeError):
            print(f"WARN could not read previous report {out_path}",
                  file=sys.stderr)

    regressions = []
    if previous and previous.get("schema") == REPORT_SCHEMA:
        regressions, deltas = diff_reports(previous, report, args.threshold)
        if deltas:
            report["diff"] = {"vs": str(out_path), "metrics": deltas}

    with open(out_path, "w") as f:
        json.dump(report, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"wrote {out_path} ({len(report['entries'])} entries)")

    for line in regressions:
        print(f"WARN regression: {line}", file=sys.stderr)
    if args.check:
        return 0
    return len(regressions)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
