#!/usr/bin/env python3
"""Project-specific lint for the hgr codebase (docs/CHECKING.md).

Two engines share one rule set:

  regex   Always available. Line-oriented scanning with comment/string
          stripping — exact for the textual rules, conservative
          approximations for the semantic id-safety rules.
  ast     Used automatically when python-libclang (`clang.cindex`) can be
          imported AND the build tree exported compile_commands.json
          (CMAKE_EXPORT_COMPILE_COMMANDS is ON by default). Parses each
          translation unit with its real compile flags and checks the
          id-safety rules on types, not text. Select explicitly with
          --engine=ast|regex|auto.

Textual rules (all scoped to src/ and tools/ C++ sources):

  nondeterminism   No rand()/srand()/random_device-or-time seeding. Every
                   random decision must flow through common/rng.hpp seeded
                   from the config, or runs stop being reproducible.
  raw-new          No raw `new` expressions; containers or unique_ptr own
                   all allocations (exception-unwind paths in the comm
                   layer must not leak).
  plain-assert     No C `assert(...)`: it compiles away under NDEBUG, and
                   partitioning bugs produce silently-wrong partitions, not
                   crashes. Use HGR_ASSERT / HGR_ASSERT_FMT (always on) or
                   HGR_DASSERT (hot loops, intentionally debug-only).
  reserved-tag     kAlltoallTag is internal to the alltoallv implementation;
                   user-level sends or recvs on it would interleave with
                   collective traffic.
  steady-clock     No raw std::chrono::steady_clock::now() outside src/obs
                   and common/timer.hpp. Timing flows through WallTimer or
                   the obs event clock so every measurement shows up in the
                   trace; scattered clock reads don't.
  ragged-comm      No std::vector<std::vector<...>> in src/parallel/ or
                   src/partition/: ragged buffers cost one allocation per
                   slot plus a serialize copy on every exchange. Use
                   FlatBuffer<T> (parallel/flat_buffer.hpp) or a Workspace
                   borrow. Deliberate ragged use (the compat shims) is
                   suppressed with `// hgr-lint: ragged-ok`.
  swallowed-failure  No `catch (...)` whose body neither rethrows nor
                   aborts (throw / rethrow_exception / abort_all /
                   std::abort / std::terminate / std::exit). A silently
                   swallowed failure in the comm or degradation paths turns
                   a diagnosable abort into a wrong answer or a hang
                   (docs/ROBUSTNESS.md). Deliberate sinks are suppressed
                   with `// hgr-lint: swallow-ok` on the catch line.
  raw-thread       No raw std::thread / std::jthread construction outside
                   common/thread_pool.* and parallel/comm.cpp. Ad-hoc
                   threads bypass the ThreadPool's determinism contract,
                   its exception capture, and the tp.* counters; kernels
                   get shared-memory parallelism through the Workspace's
                   attached pool (docs/PARALLELISM.md). std::thread::id and
                   std::this_thread are fine (identity, not execution).
                   Deliberate spawns are suppressed with
                   `// hgr-lint: thread-ok`.
  counter-in-loop  No `obs::counter(...)` calls inside loop bodies in src/:
                   each call is a registry map lookup under a mutex. Hoist
                   a `static obs::CachedCounter` handle out of the loop
                   (docs/OBSERVABILITY.md) or accumulate locally and bump
                   once after. Deliberate per-iteration lookups are
                   suppressed with `// hgr-lint: counter-ok`.

Id-safety rules (common/types.hpp strong ids; see docs/CHECKING.md):

  raw-subscript    Indexing an id-typed container (IdVector, IdSpan,
                   Partition) with a raw integer instead of the matching
                   strong id. The typed operator[] rejects this at compile
                   time; the lint additionally catches indexing that
                   launders through `.raw()[i]` and (in the ast engine)
                   any integer-typed subscript reaching an id container.
  raw-escape       `to_raw(...)`, `from_raw<...>(...)`,
                   `from_raw_span<...>(...)` or `.raw()` outside the
                   comm/IO boundary. The wire format and file formats are
                   raw Index by design; everywhere else, escaping the type
                   system needs a `// hgr-lint: raw-ok` marker on the
                   statement explaining itself. Allowlisted: src/parallel/
                   (comm boundary), hypergraph/io.cpp, hypergraph/builder.cpp,
                   metrics/partition_io.cpp (file formats and raw-input
                   construction), and tools/ (CLI surface).
  weight-index-narrowing  static_cast<Index>(...) of a Weight-typed
                   expression. Weight is 64-bit, Index is 32-bit: weights
                   legitimately exceed Index range on large instances, so
                   a weight must never be used as a count or id. (The ast
                   engine checks the real operand type; the regex engine
                   flags casts whose operand spells a weight.)

A finding line may be suppressed with a trailing `// hgr-lint: allow`
comment (rule-specific markers: ragged-ok / swallow-ok / raw-ok).
`raw-ok` is statement-scoped: a marker line covers every line up to the
next `;` so multi-line constructor calls need only one marker.

Exit status: 0 when clean, 1 when there are findings (the count is
printed on the summary line either way).
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

SUPPRESS = "hgr-lint: allow"

# Rule-specific suppression markers: a line carrying the marker is exempt
# from that one rule (unlike SUPPRESS, which silences every rule).
RULE_SUPPRESS = {
    "ragged-comm": "hgr-lint: ragged-ok",
    "swallowed-failure": "hgr-lint: swallow-ok",
    "raw-escape": "hgr-lint: raw-ok",
    "raw-subscript": "hgr-lint: raw-ok",
    "counter-in-loop": "hgr-lint: counter-ok",
    "raw-thread": "hgr-lint: thread-ok",
}

# Paths (relative to the scan root, '/'-separated) where raw id escapes are
# the point: the comm wire format and the file formats are raw Index by
# design, and the CLI parses raw user input.
RAW_ESCAPE_ALLOWLIST = (
    "src/parallel/",
    "src/hypergraph/io.cpp",
    "src/hypergraph/builder.cpp",
    "src/metrics/partition_io.cpp",
    "tools/",
)

# The strong-id machinery itself defines the escape hatches.
RAW_ESCAPE_DEFINERS = ("src/common/types.hpp",)


def raw_escape_exempt(rel: str) -> bool:
    return rel.startswith(RAW_ESCAPE_ALLOWLIST) or rel in RAW_ESCAPE_DEFINERS


# Each rule: (name, regex, explanation, file-filter or None).
RULES = [
    (
        "nondeterminism",
        re.compile(r"(?<![\w:])(?:rand|srand)\s*\(|std::random_device"
                   r"|seed\s*\(\s*time\s*\("),
        "use common/rng.hpp seeded from the config (reproducible runs)",
        None,
    ),
    (
        "raw-new",
        re.compile(r"(?<![\w_])new\s+[A-Za-z_][\w:]*(?:\s*[<({[]|\s*[;,)])"),
        "own allocations with containers or std::unique_ptr",
        None,
    ),
    (
        "plain-assert",
        re.compile(r"(?<![\w_.])assert\s*\("),
        "use HGR_ASSERT (always-on) or HGR_DASSERT (debug-only) instead",
        None,
    ),
    (
        "reserved-tag",
        re.compile(r"kAlltoallTag"),
        "the alltoall tag is reserved for internal collective traffic",
        # The comm layer itself defines and guards the tag.
        lambda path: not (path.parts[-2:] in (("parallel", "comm.hpp"),
                                              ("parallel", "comm.cpp"))),
    ),
    (
        "steady-clock",
        re.compile(r"std::chrono::steady_clock\s*::\s*now"),
        "time through common/timer.hpp (WallTimer) or the obs event clock "
        "so the measurement reaches the trace",
        # The obs layer and WallTimer are the sanctioned clock call sites.
        lambda path: "obs" not in path.parts and
                     path.parts[-2:] != ("common", "timer.hpp"),
    ),
    (
        "raw-thread",
        # `std::thread::id` (the `::` lookahead) and `std::this_thread` (no
        # `std::thread` token at all) are identity uses, not spawns.
        re.compile(r"std::j?thread\b(?!\s*::)"),
        "spawn through ThreadPool (common/thread_pool.hpp) so parallel "
        "regions keep the determinism contract, exception capture, and "
        "tp.* counters; mark deliberate raw spawns with "
        "`// hgr-lint: thread-ok`",
        # The pool itself and the rank-emulation layer own their threads.
        lambda path: path.parts[-2:] not in (("common", "thread_pool.hpp"),
                                             ("common", "thread_pool.cpp"),
                                             ("parallel", "comm.cpp")),
    ),
    (
        "ragged-comm",
        re.compile(r"std::vector<\s*std::vector<"),
        "use FlatBuffer<T> (parallel/flat_buffer.hpp) or a Workspace "
        "borrow; mark deliberate ragged use with `// hgr-lint: ragged-ok`",
        # Only the hot comm/partition layers are held to the flat format.
        lambda path: "parallel" in path.parts or "partition" in path.parts,
    ),
]

LINE_COMMENT = re.compile(r"//.*$")
STRING = re.compile(r'"(?:[^"\\]|\\.)*"')


def strip_noise(line: str) -> str:
    """Drop string literals and line comments so they can't false-positive."""
    line = STRING.sub('""', line)
    return LINE_COMMENT.sub("", line)


def cleaned_lines(path: Path) -> list[tuple[int, str, str]]:
    """(lineno, raw, cleaned) per line, with comments and strings blanked.

    Keeps one entry per source line (cleaned may be empty) so multi-line
    scans can brace-match across the whole file.
    """
    out = []
    in_block_comment = False
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                out.append((lineno, raw, ""))
                continue
            line = line[end + 2:]
            in_block_comment = False
        # Strip (possibly several) block comments opening on this line.
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block_comment = True
                break
            line = line[:start] + line[end + 2:]
        out.append((lineno, raw, strip_noise(line)))
    return out


CATCH_ALL = re.compile(r"catch\s*\(\s*\.\.\.\s*\)")
# Anything that propagates or escalates the failure out of the handler.
FAILURE_PROPAGATION = re.compile(
    r"\bthrow\b|rethrow_exception|abort_all|std::abort\b|std::terminate\b"
    r"|std::exit\b")


def lint_swallowed_failures(path: Path,
                            lines: list[tuple[int, str, str]]) -> list[str]:
    """Flag `catch (...)` handlers that neither rethrow nor abort."""
    findings = []
    for i, (lineno, raw, cleaned) in enumerate(lines):
        match = CATCH_ALL.search(cleaned)
        if match is None:
            continue
        if SUPPRESS in raw or RULE_SUPPRESS["swallowed-failure"] in raw:
            continue
        # Collect the brace-matched handler body, which may span lines.
        depth = 0
        opened = closed = False
        body_chars = []
        j, col = i, match.end()
        while j < len(lines) and not closed:
            text = lines[j][2]
            for k in range(col, len(text)):
                ch = text[k]
                if ch == "{":
                    depth += 1
                    opened = True
                    if depth == 1:
                        continue
                elif ch == "}":
                    depth -= 1
                    if opened and depth == 0:
                        closed = True
                        break
                if opened:
                    body_chars.append(ch)
            if not closed:
                body_chars.append("\n")
                j += 1
                col = 0
        if not closed:
            continue  # unbalanced (macro soup): don't guess
        if FAILURE_PROPAGATION.search("".join(body_chars)):
            continue
        findings.append(
            f"{path}:{lineno}: [swallowed-failure] {raw.strip()}\n"
            "    -> a catch-all must rethrow or abort (throw, "
            "rethrow_exception, abort_all, std::abort, std::terminate, "
            "std::exit); mark deliberate sinks with "
            "`// hgr-lint: swallow-ok`")
    return findings


LOOP_KEYWORD = re.compile(r"(?<![\w_])(?:for|while|do)(?![\w_])")
COUNTER_CALL_SITE = re.compile(r"obs\s*::\s*counter\s*\(")


def lint_counter_in_loop(path: Path,
                         lines: list[tuple[int, str, str]]) -> list[str]:
    """Flag obs::counter(...) lookups inside loop bodies (src/ only).

    Brace-matching scan: a `{` opened after a for/while/do keyword marks a
    loop scope; any obs::counter call while at least one loop scope is open
    (or in a brace-less loop body) is a per-iteration registry lookup and
    must go through a hoisted `static obs::CachedCounter` instead.
    """
    findings = []
    loop_stack: list[bool] = []  # per open brace: opened by a loop header?
    pending_loop = False         # loop keyword seen, body not yet entered
    pending_base = 0             # paren depth where that keyword was seen
    paren_depth = 0
    for lineno, raw, cleaned in lines:
        suppressed = (SUPPRESS in raw
                      or RULE_SUPPRESS["counter-in-loop"] in raw)
        i = 0
        while i < len(cleaned):
            kw = LOOP_KEYWORD.match(cleaned, i)
            if kw is not None:
                pending_loop = True
                pending_base = paren_depth
                i = kw.end()
                continue
            call = COUNTER_CALL_SITE.match(cleaned, i)
            if call is not None:
                # `(` of the matched call is consumed here, not below.
                paren_depth += 1
                in_loop = any(loop_stack) or (
                    pending_loop and paren_depth - 1 <= pending_base)
                if in_loop and not suppressed:
                    findings.append(
                        f"{path}:{lineno}: [counter-in-loop] {raw.strip()}\n"
                        "    -> obs::counter resolves the name in the "
                        "registry on every call; hoist a `static "
                        "obs::CachedCounter` out of the loop or accumulate "
                        "locally (mark deliberate per-iteration lookups "
                        "with `// hgr-lint: counter-ok`)")
                i = call.end()
                continue
            ch = cleaned[i]
            if ch == "(":
                paren_depth += 1
            elif ch == ")":
                paren_depth = max(0, paren_depth - 1)
            elif ch == "{":
                # A brace inside the loop header's parens (a lambda or
                # brace-init argument) is not the loop body.
                if pending_loop and paren_depth <= pending_base:
                    loop_stack.append(True)
                    pending_loop = False
                else:
                    loop_stack.append(False)
            elif ch == "}":
                if loop_stack:
                    loop_stack.pop()
            elif ch == ";" and paren_depth <= pending_base:
                pending_loop = False
            i += 1
    return findings


# ---------------------------------------------------------------------------
# Id-safety rules, regex engine.
# ---------------------------------------------------------------------------

RAW_ESCAPE = re.compile(
    r"(?<![\w_])to_raw\s*\(|(?<![\w_])from_raw(?:_span)?\s*<"
    r"|\.\s*raw\s*\(\s*\)")

# An id-typed container subscripted with a bare integer literal: the typed
# operator[] rejects it, but `.raw()[3]` and macro-expanded code can sneak
# it past the compiler. Conservative on purpose: only integer literals.
ID_CONTAINER_DECL = re.compile(
    r"\b(?:IdVector|IdSpan)\s*<[^;{}()]*>\s+(\w+)\b"
    r"|\bPartition[&\s]+(\w+)\s*[({=;,]")
RAW_LITERAL_SUBSCRIPT = re.compile(r"\.raw\s*\(\s*\)\s*\[")

# `.size()` of a weights vector is a count, not a weight — skip it.
WEIGHT_NARROWING = re.compile(
    r"static_cast\s*<\s*Index\s*>\s*\(\s*[^()]*"
    r"(?:[Ww]eight|total_vertex_weight|net_cost|vertex_size)"
    r"(?![\w_]*\s*\.\s*s?size\s*\()")


def lint_id_safety_regex(path: Path, rel: str,
                         lines: list[tuple[int, str, str]]) -> list[str]:
    """Regex approximations of the semantic id-safety rules."""
    findings = []
    raw_ok_active = False  # statement-scoped `raw-ok` marker
    for lineno, raw, line in lines:
        if RULE_SUPPRESS["raw-escape"] in raw:
            raw_ok_active = True
        suppressed = raw_ok_active or SUPPRESS in raw
        if ";" in line:
            raw_ok_active = False
        if not line.strip():
            continue
        if not raw_escape_exempt(rel) and not suppressed \
                and RAW_ESCAPE.search(line):
            findings.append(
                f"{path}:{lineno}: [raw-escape] {raw.strip()}\n"
                "    -> raw id escapes belong at the comm/IO boundary "
                "(src/parallel/, the io/builder files, tools/); elsewhere "
                "mark the statement with `// hgr-lint: raw-ok` and say why")
        if not suppressed and RAW_LITERAL_SUBSCRIPT.search(line):
            findings.append(
                f"{path}:{lineno}: [raw-subscript] {raw.strip()}\n"
                "    -> index id-typed containers with their id type "
                "(VertexId/NetId/PartId/RankId), not through .raw()[...]")
        if SUPPRESS not in raw and WEIGHT_NARROWING.search(line):
            findings.append(
                f"{path}:{lineno}: [weight-index-narrowing] {raw.strip()}\n"
                "    -> Weight is 64-bit and Index is 32-bit; a weight must "
                "not become a count or id (restructure, or keep the math in "
                "Weight)")
    return findings


# ---------------------------------------------------------------------------
# Id-safety rules, AST engine (libclang, driven by compile_commands.json).
# ---------------------------------------------------------------------------

ID_CONTAINER_SPELLINGS = ("IdVector<", "IdSpan<", "Partition")
STRONG_ID_SPELLING = "StrongId<"
RAW_ESCAPE_CALLEES = ("to_raw", "from_raw", "from_raw_span", "raw")


def load_compile_commands(build_dir: Path):
    db_path = build_dir / "compile_commands.json"
    if not db_path.is_file():
        return None
    entries = {}
    for entry in json.loads(db_path.read_text()):
        src = Path(entry["directory"], entry["file"]).resolve()
        args = entry.get("arguments")
        if args is None:
            # Shell-split the "command" form; good enough for cmake output.
            args = entry["command"].split()
        # Drop the compiler itself and the -o/-c output clauses.
        clean = []
        skip = False
        for a in args[1:]:
            if skip:
                skip = False
                continue
            if a in ("-o", "-c"):
                skip = (a == "-o")
                continue
            if a == str(src) or a.endswith(entry["file"]):
                continue
            clean.append(a)
        entries[src] = clean
    return entries


def is_integerish(type_obj) -> bool:
    spelling = type_obj.get_canonical().spelling
    return spelling in ("int", "long", "long long", "short", "unsigned int",
                        "unsigned long", "unsigned long long", "std::size_t",
                        "size_t")


def lint_file_ast(cindex, path: Path, rel: str, args: list[str],
                  raw_lines: list[str]) -> list[str]:
    """Type-accurate raw-subscript / raw-escape / narrowing findings."""
    findings = []

    def line_has_marker(lineno: int, marker: str) -> bool:
        # Statement-scoped: walk back from the use to the nearest `;` or
        # marker, whichever comes first.
        for back in range(lineno, max(0, lineno - 8), -1):
            text = raw_lines[back - 1]
            if marker in text or SUPPRESS in text:
                return True
            if back != lineno and ";" in strip_noise(text):
                return False
        return False

    index = cindex.Index.create()
    tu = index.parse(str(path), args=args)
    for node in tu.cursor.walk_preorder():
        loc = node.location
        if loc.file is None or Path(loc.file.name).resolve() != path.resolve():
            continue
        text = raw_lines[loc.line - 1].strip() if loc.line <= len(raw_lines) \
            else ""
        if node.kind == cindex.CursorKind.CXX_OPERATOR_CALL_EXPR:
            children = list(node.get_children())
            if len(children) == 3 and "operator[]" in (
                    children[0].spelling or ""):
                base_type = children[1].type.spelling
                idx_type = children[2].type
                if any(s in base_type for s in ID_CONTAINER_SPELLINGS) \
                        and is_integerish(idx_type) \
                        and not line_has_marker(
                            loc.line, RULE_SUPPRESS["raw-subscript"]):
                    findings.append(
                        f"{path}:{loc.line}: [raw-subscript] {text}\n"
                        f"    -> {base_type} is indexed by a strong id, got "
                        f"{idx_type.spelling}")
        elif node.kind == cindex.CursorKind.CALL_EXPR:
            if node.spelling in RAW_ESCAPE_CALLEES \
                    and not raw_escape_exempt(rel) \
                    and not line_has_marker(
                        loc.line, RULE_SUPPRESS["raw-escape"]):
                findings.append(
                    f"{path}:{loc.line}: [raw-escape] {text}\n"
                    "    -> raw id escapes belong at the comm/IO boundary; "
                    "mark deliberate ones with `// hgr-lint: raw-ok`")
        elif node.kind == cindex.CursorKind.CXX_STATIC_CAST_EXPR:
            dest = node.type.get_canonical().spelling
            children = list(node.get_children())
            if children and dest == "int":
                src_t = children[-1].type.get_canonical().spelling
                if src_t in ("long", "long long") \
                        and "Weight" in children[-1].type.spelling \
                        and not line_has_marker(loc.line, SUPPRESS):
                    findings.append(
                        f"{path}:{loc.line}: [weight-index-narrowing] "
                        f"{text}\n"
                        "    -> Weight (64-bit) narrowed to Index (32-bit)")
    return findings


def ast_engine_available(build_dir: Path):
    """(cindex, compile_commands) when the ast engine can run, else None."""
    try:
        from clang import cindex  # noqa: deferred, optional dependency
    except ImportError:
        return None
    commands = load_compile_commands(build_dir)
    if not commands:
        return None
    try:  # probe that a usable libclang shared object actually loads
        cindex.Index.create()
    except Exception:
        return None
    return cindex, commands


def lint_file(path: Path, rel: str) -> list[str]:
    findings = []
    lines = cleaned_lines(path)
    for lineno, raw, line in lines:
        if SUPPRESS in raw:
            continue
        if not line.strip():
            continue
        for name, pattern, why, file_filter in RULES:
            if file_filter is not None and not file_filter(path):
                continue
            marker = RULE_SUPPRESS.get(name)
            if marker is not None and marker in raw:
                continue
            if pattern.search(line):
                findings.append(
                    f"{path}:{lineno}: [{name}] {raw.strip()}\n"
                    f"    -> {why}")
    findings += lint_swallowed_failures(path, lines)
    if rel.startswith("src/"):
        findings += lint_counter_in_loop(path, lines)
    findings += lint_id_safety_regex(path, rel, lines)
    return findings


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description="hgr project lint (see module docstring for rules)")
    parser.add_argument("root", nargs="?", default=".",
                        help="repository root to scan (default: .)")
    parser.add_argument("--engine", choices=("auto", "regex", "ast"),
                        default="auto",
                        help="auto picks ast when libclang and "
                             "compile_commands.json are available")
    parser.add_argument("--build-dir", default=None,
                        help="build tree holding compile_commands.json "
                             "(default: <root>/build)")
    opts = parser.parse_args(argv[1:])

    root = Path(opts.root)
    build_dir = Path(opts.build_dir) if opts.build_dir else root / "build"
    files = []
    for sub in ("src", "tools"):
        base = root / sub
        if base.is_dir():
            files += sorted(p for p in base.rglob("*")
                            if p.suffix in (".hpp", ".cpp", ".h", ".cc"))
    if not files:
        print(f"hgr_lint: no sources found under {root}", file=sys.stderr)
        return 1

    ast = None
    if opts.engine in ("auto", "ast"):
        ast = ast_engine_available(build_dir)
        if ast is None and opts.engine == "ast":
            print("hgr_lint: --engine=ast needs python-libclang and "
                  f"{build_dir}/compile_commands.json", file=sys.stderr)
            return 1
    engine = "ast" if ast else "regex"

    findings = []
    ast_checked = 0
    for path in files:
        rel = path.relative_to(root).as_posix()
        findings += lint_file(path, rel)
        if ast:
            cindex, commands = ast
            resolved = path.resolve()
            if resolved in commands:
                raw_lines = path.read_text().splitlines()
                try:
                    findings += lint_file_ast(cindex, path, rel,
                                              commands[resolved], raw_lines)
                    ast_checked += 1
                except Exception as e:  # noqa: a broken TU must not kill lint
                    print(f"hgr_lint: ast pass failed for {path}: {e}",
                          file=sys.stderr)
    # The regex engine already covers raw-escape textually; the ast pass
    # re-reports the same sites with type info. Dedup by file:line:rule.
    seen = set()
    unique = []
    for f in findings:
        key = f.split(" ", 1)[0] + f.split("]")[0].rsplit("[", 1)[-1]
        if key in seen:
            continue
        seen.add(key)
        unique.append(f)
    findings = unique

    for f in findings:
        print(f)
    suffix = f", {ast_checked} TU(s) type-checked" if ast else ""
    print(f"hgr_lint[{engine}]: {len(files)} files scanned, "
          f"{len(findings)} finding(s){suffix}")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
