#!/usr/bin/env python3
"""Project-specific lint for the hgr codebase (docs/CHECKING.md).

Rules (all scoped to src/ and tools/ C++ sources):

  nondeterminism   No rand()/srand()/random_device-or-time seeding. Every
                   random decision must flow through common/rng.hpp seeded
                   from the config, or runs stop being reproducible.
  raw-new          No raw `new` expressions; containers or unique_ptr own
                   all allocations (exception-unwind paths in the comm
                   layer must not leak).
  plain-assert     No C `assert(...)`: it compiles away under NDEBUG, and
                   partitioning bugs produce silently-wrong partitions, not
                   crashes. Use HGR_ASSERT / HGR_ASSERT_FMT (always on) or
                   HGR_DASSERT (hot loops, intentionally debug-only).
  reserved-tag     kAlltoallTag is internal to the alltoallv implementation;
                   user-level sends or recvs on it would interleave with
                   collective traffic.
  steady-clock     No raw std::chrono::steady_clock::now() outside src/obs
                   and common/timer.hpp. Timing flows through WallTimer or
                   the obs event clock so every measurement shows up in the
                   trace; scattered clock reads don't.
  ragged-comm      No std::vector<std::vector<...>> in src/parallel/ or
                   src/partition/: ragged buffers cost one allocation per
                   slot plus a serialize copy on every exchange. Use
                   FlatBuffer<T> (parallel/flat_buffer.hpp) or a Workspace
                   borrow. Deliberate ragged use (the compat shims) is
                   suppressed with `// hgr-lint: ragged-ok`.
  swallowed-failure  No `catch (...)` whose body neither rethrows nor
                   aborts (throw / rethrow_exception / abort_all /
                   std::abort / std::terminate / std::exit). A silently
                   swallowed failure in the comm or degradation paths turns
                   a diagnosable abort into a wrong answer or a hang
                   (docs/ROBUSTNESS.md). Deliberate sinks are suppressed
                   with `// hgr-lint: swallow-ok` on the catch line.

A finding line may be suppressed with a trailing `// hgr-lint: allow`
comment (`// hgr-lint: ragged-ok` / `// hgr-lint: swallow-ok` for their
rules). Exit status is the number of findings (0 = clean).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

SUPPRESS = "hgr-lint: allow"

# Rule-specific suppression markers: a line carrying the marker is exempt
# from that one rule (unlike SUPPRESS, which silences every rule).
RULE_SUPPRESS = {
    "ragged-comm": "hgr-lint: ragged-ok",
    "swallowed-failure": "hgr-lint: swallow-ok",
}

# Each rule: (name, regex, explanation, file-filter or None).
RULES = [
    (
        "nondeterminism",
        re.compile(r"(?<![\w:])(?:rand|srand)\s*\(|std::random_device"
                   r"|seed\s*\(\s*time\s*\("),
        "use common/rng.hpp seeded from the config (reproducible runs)",
        None,
    ),
    (
        "raw-new",
        re.compile(r"(?<![\w_])new\s+[A-Za-z_][\w:]*(?:\s*[<({[]|\s*[;,)])"),
        "own allocations with containers or std::unique_ptr",
        None,
    ),
    (
        "plain-assert",
        re.compile(r"(?<![\w_.])assert\s*\("),
        "use HGR_ASSERT (always-on) or HGR_DASSERT (debug-only) instead",
        None,
    ),
    (
        "reserved-tag",
        re.compile(r"kAlltoallTag"),
        "the alltoall tag is reserved for internal collective traffic",
        # The comm layer itself defines and guards the tag.
        lambda path: not (path.parts[-2:] in (("parallel", "comm.hpp"),
                                              ("parallel", "comm.cpp"))),
    ),
    (
        "steady-clock",
        re.compile(r"std::chrono::steady_clock\s*::\s*now"),
        "time through common/timer.hpp (WallTimer) or the obs event clock "
        "so the measurement reaches the trace",
        # The obs layer and WallTimer are the sanctioned clock call sites.
        lambda path: "obs" not in path.parts and
                     path.parts[-2:] != ("common", "timer.hpp"),
    ),
    (
        "ragged-comm",
        re.compile(r"std::vector<\s*std::vector<"),
        "use FlatBuffer<T> (parallel/flat_buffer.hpp) or a Workspace "
        "borrow; mark deliberate ragged use with `// hgr-lint: ragged-ok`",
        # Only the hot comm/partition layers are held to the flat format.
        lambda path: "parallel" in path.parts or "partition" in path.parts,
    ),
]

LINE_COMMENT = re.compile(r"//.*$")
STRING = re.compile(r'"(?:[^"\\]|\\.)*"')


def strip_noise(line: str) -> str:
    """Drop string literals and line comments so they can't false-positive."""
    line = STRING.sub('""', line)
    return LINE_COMMENT.sub("", line)


def cleaned_lines(path: Path) -> list[tuple[int, str, str]]:
    """(lineno, raw, cleaned) per line, with comments and strings blanked.

    Keeps one entry per source line (cleaned may be empty) so multi-line
    scans can brace-match across the whole file.
    """
    out = []
    in_block_comment = False
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                out.append((lineno, raw, ""))
                continue
            line = line[end + 2:]
            in_block_comment = False
        # Strip (possibly several) block comments opening on this line.
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block_comment = True
                break
            line = line[:start] + line[end + 2:]
        out.append((lineno, raw, strip_noise(line)))
    return out


CATCH_ALL = re.compile(r"catch\s*\(\s*\.\.\.\s*\)")
# Anything that propagates or escalates the failure out of the handler.
FAILURE_PROPAGATION = re.compile(
    r"\bthrow\b|rethrow_exception|abort_all|std::abort\b|std::terminate\b"
    r"|std::exit\b")


def lint_swallowed_failures(path: Path,
                            lines: list[tuple[int, str, str]]) -> list[str]:
    """Flag `catch (...)` handlers that neither rethrow nor abort."""
    findings = []
    for i, (lineno, raw, cleaned) in enumerate(lines):
        match = CATCH_ALL.search(cleaned)
        if match is None:
            continue
        if SUPPRESS in raw or RULE_SUPPRESS["swallowed-failure"] in raw:
            continue
        # Collect the brace-matched handler body, which may span lines.
        depth = 0
        opened = closed = False
        body_chars = []
        j, col = i, match.end()
        while j < len(lines) and not closed:
            text = lines[j][2]
            for k in range(col, len(text)):
                ch = text[k]
                if ch == "{":
                    depth += 1
                    opened = True
                    if depth == 1:
                        continue
                elif ch == "}":
                    depth -= 1
                    if opened and depth == 0:
                        closed = True
                        break
                if opened:
                    body_chars.append(ch)
            if not closed:
                body_chars.append("\n")
                j += 1
                col = 0
        if not closed:
            continue  # unbalanced (macro soup): don't guess
        if FAILURE_PROPAGATION.search("".join(body_chars)):
            continue
        findings.append(
            f"{path}:{lineno}: [swallowed-failure] {raw.strip()}\n"
            "    -> a catch-all must rethrow or abort (throw, "
            "rethrow_exception, abort_all, std::abort, std::terminate, "
            "std::exit); mark deliberate sinks with "
            "`// hgr-lint: swallow-ok`")
    return findings


def lint_file(path: Path) -> list[str]:
    findings = []
    lines = cleaned_lines(path)
    for lineno, raw, line in lines:
        if SUPPRESS in raw:
            continue
        if not line.strip():
            continue
        for name, pattern, why, file_filter in RULES:
            if file_filter is not None and not file_filter(path):
                continue
            marker = RULE_SUPPRESS.get(name)
            if marker is not None and marker in raw:
                continue
            if pattern.search(line):
                findings.append(
                    f"{path}:{lineno}: [{name}] {raw.strip()}\n"
                    f"    -> {why}")
    findings += lint_swallowed_failures(path, lines)
    return findings


def main(argv: list[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(".")
    files = []
    for sub in ("src", "tools"):
        base = root / sub
        if base.is_dir():
            files += sorted(p for p in base.rglob("*")
                            if p.suffix in (".hpp", ".cpp", ".h", ".cc"))
    if not files:
        print(f"hgr_lint: no sources found under {root}", file=sys.stderr)
        return 1
    findings = []
    for path in files:
        findings += lint_file(path)
    for f in findings:
        print(f)
    print(f"hgr_lint: {len(files)} files scanned, {len(findings)} finding(s)")
    return min(len(findings), 125)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
