// hgr_cli — command-line (re)partitioner, the Zoltan-binary analog.
//
// Modes:
//   partition:   hgr_cli partition <input> --k=16 [--eps=0.05] [--seed=1]
//                [--graph] [--ranks=P] [--out=parts.txt]
//   repartition: hgr_cli repartition <input> --old=parts.txt --alpha=100
//                --k=16 [--ranks=P] [...]
//   info:        hgr_cli info <input> [--graph|--mm]
//
// <input> is an hMETIS hypergraph file by default, a METIS graph file with
// --graph, or a MatrixMarket file with --mm (both converted to 2-pin
// nets). The partition file format is one part id per line, vertex order.
// Prints connectivity-1 cut, balance, and (for repartition) the
// comm/migration cost split; --report adds the per-part breakdown.
//
// --ranks=P runs the parallel (in-process message passing) partitioner on
// P ranks instead of the serial multilevel one. --trace-json=FILE dumps
// the run's phase timings and counters as JSON; --chrome-trace=FILE
// captures the per-rank event timeline in Chrome trace-event format (open
// in https://ui.perfetto.dev); --epoch-csv=FILE writes the run as a
// one-epoch EpochSeries CSV row (docs/OBSERVABILITY.md).
//
// Robustness knobs (docs/ROBUSTNESS.md): --fault-plan=SPEC installs a
// deterministic fault-injection plan on the parallel runtime;
// --epoch-retries=N and --epoch-timeout=S configure the repartition
// retry/degradation policy (repartition mode runs through it, so an
// injected deadlock or crash degrades to keeping the old partition
// instead of failing the invocation).
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include <memory>

#include "check/check_level.hpp"
#include "check/validate.hpp"
#include "fault/fault_plan.hpp"
#include "common/timer.hpp"
#include "core/epoch_driver.hpp"
#include "core/incremental_repart.hpp"
#include "core/repartitioner.hpp"
#include "hypergraph/convert.hpp"
#include "hypergraph/io.hpp"
#include "hypergraph/stats.hpp"
#include "metrics/balance.hpp"
#include "metrics/cost_model.hpp"
#include "metrics/cut.hpp"
#include "metrics/migration.hpp"
#include "metrics/partition_io.hpp"
#include "metrics/report.hpp"
#include "obs/critical_path.hpp"
#include "obs/stats_stream.hpp"
#include "obs/trace.hpp"
#include "parallel/par_partitioner.hpp"
#include "partition/partitioner.hpp"

namespace {

using namespace hgr;

struct CliOptions {
  std::string mode;
  std::string input;
  std::string old_parts_path;
  std::string out_path;
  std::string trace_json_path;
  std::string chrome_trace_path;
  std::string epoch_csv_path;
  std::string stats_stream_path;
  std::string fault_plan_spec;
  int epoch_retries = 1;        // failed repartition attempts retried
  double epoch_timeout = 0.0;   // per-attempt wall budget (0 = unlimited)
  Index k = 2;
  double eps = 0.05;
  std::uint64_t seed = 1;
  Weight alpha = 100;
  int ranks = 0;    // 0 = serial partitioner
  int threads = 1;  // shared-memory threads per rank
  check::CheckLevel check_level = check::CheckLevel::kOff;
  IncrementalMode incremental = IncrementalMode::kOff;
  bool graph_input = false;
  bool mm_input = false;
  bool report = false;
};

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n", msg);
  std::fprintf(stderr,
               "usage:\n"
               "  hgr_cli partition   <input> --k=N [--eps=F] [--seed=S] "
               "[--graph|--mm] [--ranks=P] [--threads=T] [--report] "
               "[--out=FILE] "
               "[--trace-json=FILE] [--chrome-trace=FILE] "
               "[--epoch-csv=FILE] [--stats-stream=FILE] [--fault-plan=SPEC] "
               "[--validate=cheap|paranoid]\n"
               "  hgr_cli repartition <input> --old=FILE --k=N [--alpha=A] "
               "[--eps=F] [--seed=S] [--graph] [--ranks=P] [--threads=T] "
               "[--out=FILE] "
               "[--trace-json=FILE] [--chrome-trace=FILE] "
               "[--epoch-csv=FILE] [--stats-stream=FILE] [--fault-plan=SPEC] "
               "[--epoch-retries=N] "
               "[--epoch-timeout=S] [--incremental=on|off|auto] "
               "[--validate=cheap|paranoid]\n"
               "  hgr_cli info        <input> [--graph]\n"
               "fault plan SPEC: [seed=S;]<kind>@<site>[:key=val,...] "
               "(docs/ROBUSTNESS.md)\n");
  std::exit(2);
}

CliOptions parse(int argc, char** argv) {
  if (argc < 3) usage();
  CliOptions opt;
  opt.mode = argv[1];
  opt.input = argv[2];
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value = eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "--k") {
      opt.k = static_cast<Index>(std::stol(value));
    } else if (key == "--eps") {
      opt.eps = std::stod(value);
    } else if (key == "--seed") {
      opt.seed = std::stoull(value);
    } else if (key == "--alpha") {
      opt.alpha = static_cast<Weight>(std::stoll(value));
    } else if (key == "--ranks") {
      opt.ranks = static_cast<int>(std::stol(value));
    } else if (key == "--threads") {
      opt.threads = static_cast<int>(std::stol(value));
      if (opt.threads < 1) usage("--threads must be >= 1");
    } else if (key == "--old") {
      opt.old_parts_path = value;
    } else if (key == "--out") {
      opt.out_path = value;
    } else if (key == "--trace-json") {
      opt.trace_json_path = value;
    } else if (key == "--chrome-trace") {
      opt.chrome_trace_path = value;
    } else if (key == "--epoch-csv") {
      opt.epoch_csv_path = value;
    } else if (key == "--stats-stream") {
      opt.stats_stream_path = value;
    } else if (key == "--fault-plan") {
      opt.fault_plan_spec = value;
    } else if (key == "--epoch-retries") {
      opt.epoch_retries = static_cast<int>(std::stol(value));
    } else if (key == "--epoch-timeout") {
      opt.epoch_timeout = std::stod(value);
    } else if (key == "--incremental") {
      if (value == "on")
        opt.incremental = IncrementalMode::kOn;
      else if (value == "off")
        opt.incremental = IncrementalMode::kOff;
      else if (value == "auto")
        opt.incremental = IncrementalMode::kAuto;
      else
        usage(("bad --incremental mode: " + value +
               " (expected on|off|auto)")
                  .c_str());
    } else if (key == "--validate") {
      if (!check::parse_check_level(value, opt.check_level))
        usage(("bad --validate level: " + value +
               " (expected off|cheap|paranoid)")
                  .c_str());
    } else if (key == "--graph") {
      opt.graph_input = true;
    } else if (key == "--mm") {
      opt.mm_input = true;
    } else if (key == "--report") {
      opt.report = true;
    } else {
      usage(("unknown flag: " + arg).c_str());
    }
  }
  return opt;
}

Hypergraph load(const CliOptions& opt) {
  if (opt.mm_input)
    return graph_to_hypergraph(read_matrix_market_file(opt.input));
  if (opt.graph_input)
    return graph_to_hypergraph(read_metis_graph_file(opt.input));
  return read_hmetis_file(opt.input);
}

void write_parts(const Partition& p, const std::string& path) {
  if (path.empty()) {
    write_partition(p, std::cout);
    return;
  }
  write_partition_file(p, path);
  std::fprintf(stderr, "wrote %d assignments to %s\n", p.num_vertices(),
               path.c_str());
}

void report_quality(const Hypergraph& h, const Partition& p,
                    bool full_report) {
  std::fprintf(stderr, "k=%d cut=%lld imbalance=%.4f cut_nets=%d\n", p.k,
               static_cast<long long>(connectivity_cut(h, p)),
               imbalance(h.vertex_weights(), p), num_cut_nets(h, p));
  if (full_report)
    std::fprintf(stderr, "%s", analyze_partition(h, p).to_string().c_str());
}

void maybe_dump_trace(const CliOptions& opt) {
  if (!opt.trace_json_path.empty()) {
    if (!obs::write_trace_json(opt.trace_json_path)) {
      std::fprintf(stderr, "error: could not write trace to %s\n",
                   opt.trace_json_path.c_str());
      std::exit(1);
    }
    std::fprintf(stderr, "wrote trace to %s\n", opt.trace_json_path.c_str());
  }
  if (!opt.chrome_trace_path.empty()) {
    if (!obs::write_chrome_trace(opt.chrome_trace_path)) {
      std::fprintf(stderr, "error: could not write chrome trace to %s\n",
                   opt.chrome_trace_path.c_str());
      std::exit(1);
    }
    std::fprintf(stderr, "wrote chrome trace to %s (open in ui.perfetto.dev)\n",
                 opt.chrome_trace_path.c_str());
  }
  if (!opt.stats_stream_path.empty()) {
    if (!obs::write_stats_stream(opt.stats_stream_path)) {
      std::fprintf(stderr, "error: could not write stats stream to %s\n",
                   opt.stats_stream_path.c_str());
      std::exit(1);
    }
    std::fprintf(stderr, "wrote stats stream to %s\n",
                 opt.stats_stream_path.c_str());
  }
}

/// Total seconds attributed to phase nodes named `name` in the global
/// trace (the CLI runs one (re)partition, so totals == this run).
double phase_seconds(const obs::PhaseSnapshot& node, const std::string& name) {
  double s = node.name == name ? node.seconds : 0.0;
  for (const obs::PhaseSnapshot& child : node.children)
    s += phase_seconds(child, name);
  return s;
}

/// Write the CLI's single (re)partitioning decision as a one-row
/// EpochSeries CSV: epoch 1 for a static partition, epoch 2 for a
/// repartition (matching run_epochs' numbering).
void maybe_dump_epoch_csv(const CliOptions& opt, const Hypergraph& h,
                          const Partition& p, const RepartitionCost& cost,
                          Index migrated, double seconds, Index epoch,
                          bool degraded = false, Index retries = 0,
                          RepartTier tier = RepartTier::kFull,
                          bool escalated = false) {
  if (opt.epoch_csv_path.empty()) return;
  EpochRecord rec;
  rec.epoch = epoch;
  rec.is_static = epoch == 1;
  rec.degraded = degraded;
  rec.retries = retries;
  rec.tier = epoch == 1 ? RepartTier::kStatic : tier;
  rec.escalated = escalated;
  rec.cost = cost;
  rec.repart_seconds = seconds;
  rec.imbalance = imbalance(h.vertex_weights(), p);
  rec.num_vertices = h.num_vertices();
  rec.num_migrated = migrated;
  const obs::PhaseSnapshot tree = obs::global_registry().phase_tree();
  rec.coarsen_seconds = phase_seconds(tree, "coarsen");
  rec.initial_seconds = phase_seconds(tree, "initial");
  rec.refine_seconds = phase_seconds(tree, "refine");
  // Critical-path attribution of this decision's repartition span (only
  // when the span was tagged with the same epoch we are writing).
  const obs::CriticalPathSummary cp = obs::latest_critical_path();
  if (cp.valid && cp.epoch == static_cast<std::int64_t>(epoch)) {
    rec.critical_rank = cp.critical_rank;
    rec.wait_frac = cp.wait_frac;
  }
  EpochRunSummary summary;
  summary.epochs.push_back(rec);
  EpochSeries series;
  series.append(opt.input, "none",
                opt.ranks > 0 ? "par-hypergraph" : "hypergraph", opt.k,
                cost.alpha, 0, summary);
  if (!series.write_csv(opt.epoch_csv_path)) {
    std::fprintf(stderr, "error: could not write epoch csv to %s\n",
                 opt.epoch_csv_path.c_str());
    std::exit(1);
  }
  std::fprintf(stderr, "wrote epoch csv to %s\n", opt.epoch_csv_path.c_str());
}

ParallelPartitionConfig parallel_config(const CliOptions& opt,
                                        const PartitionConfig& pcfg) {
  ParallelPartitionConfig cfg;
  cfg.base = pcfg;
  cfg.num_ranks = opt.ranks;
  return cfg;
}

/// Record the CLI's single (re)partitioning decision as one epoch so the
/// trace carries the same per-epoch cost counters run_epochs emits.
void record_epoch_cost(const RepartitionCost& cost, Index migrated) {
  obs::counter("epoch.count") += 1;
  obs::counter("epoch.comm_volume") +=
      static_cast<std::uint64_t>(cost.comm_volume);
  obs::counter("epoch.migration_volume") +=
      static_cast<std::uint64_t>(cost.migration_volume);
  obs::counter("epoch.total_cost") += static_cast<std::uint64_t>(cost.total());
  obs::counter("epoch.migrated_vertices") +=
      static_cast<std::uint64_t>(migrated);
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions opt = parse(argc, argv);
  // Turn event capture on before any work so the timeline covers the
  // whole run (TraceScopes and comm events check the flag at emit time).
  if (!opt.chrome_trace_path.empty()) obs::set_events_enabled(true);
  if (!opt.stats_stream_path.empty()) {
    obs::set_stats_stream_enabled(true);
    obs::set_stats_stream_path(opt.stats_stream_path);
#ifdef SIGUSR1
    // Mid-run dumps: `kill -USR1 <pid>` flushes the ring at the next
    // sampled phase boundary. The handler is one atomic store.
    std::signal(SIGUSR1, [](int) { obs::request_stats_dump(); });
#endif
  }
  try {
    const Hypergraph h = load(opt);
    if (opt.mode == "info") {
      const DegreeStats vd = hypergraph_vertex_degree_stats(h);
      const DegreeStats ns = hypergraph_net_size_stats(h);
      std::printf("%s\n", h.summary().c_str());
      std::printf("vertex degree: min=%d max=%d avg=%.2f\n", vd.min, vd.max,
                  vd.avg);
      std::printf("net size:      min=%d max=%d avg=%.2f\n", ns.min, ns.max,
                  ns.avg);
      return 0;
    }

    PartitionConfig pcfg;
    pcfg.num_parts = opt.k;
    pcfg.epsilon = opt.eps;
    pcfg.seed = opt.seed;
    pcfg.num_threads = static_cast<Index>(opt.threads);
    pcfg.check_level = opt.check_level;
    if (!opt.fault_plan_spec.empty()) {
      try {
        pcfg.fault_plan = std::make_shared<const fault::FaultPlan>(
            fault::FaultPlan::parse(opt.fault_plan_spec));
      } catch (const std::invalid_argument& e) {
        usage(e.what());
      }
    }
    if (check::enabled(opt.check_level))
      check::validate_hypergraph(h, opt.check_level, opt.k);

    if (opt.mode == "partition") {
      obs::set_current_epoch(1);
      obs::gauge("epoch.current").set(1);
      Partition p(opt.k, h.num_vertices());
      WallTimer partition_timer;
      double partition_seconds = 0.0;
      if (opt.ranks > 0) {
        const ParallelPartitionResult r =
            parallel_partition_hypergraph(h, parallel_config(opt, pcfg));
        std::fprintf(stderr,
                     "parallel: ranks=%d levels=%d bytes_sent=%llu "
                     "messages=%llu time=%.3fs\n",
                     opt.ranks, r.levels,
                     static_cast<unsigned long long>(r.traffic.bytes_sent),
                     static_cast<unsigned long long>(r.traffic.messages_sent),
                     r.seconds);
        p = r.partition;
      } else {
        p = partition_hypergraph(h, pcfg);
      }
      partition_seconds = partition_timer.seconds();
      if (check::enabled(opt.check_level)) {
        check::PartitionExpectations expect;
        expect.epsilon = opt.eps;
        expect.context = "hgr_cli partition";
        check::validate_partition(h, p, opt.check_level, expect);
        std::fprintf(stderr, "validate: partition ok (%s)\n",
                     check::to_string(opt.check_level));
      }
      report_quality(h, p, opt.report);
      write_parts(p, opt.out_path);
      RepartitionCost cost;
      cost.alpha = opt.alpha;
      cost.comm_volume = connectivity_cut(h, p);
      cost.migration_volume = 0;
      maybe_dump_epoch_csv(opt, h, p, cost, 0, partition_seconds,
                           /*epoch=*/1);
      maybe_dump_trace(opt);
      return 0;
    }
    if (opt.mode == "repartition") {
      obs::set_current_epoch(2);
      obs::gauge("epoch.current").set(2);
      if (opt.old_parts_path.empty()) usage("repartition requires --old=");
      const Partition old_p =
          read_partition_file(opt.old_parts_path, h.num_vertices(), opt.k);
      Partition p(opt.k, h.num_vertices());
      RepartitionCost cost;
      double seconds = 0.0;
      std::size_t moves = 0;
      GuardedRepartitionResult guarded;
      {
        obs::TraceScope repart_scope("repartition");
        // Both paths run through the graceful-degradation policy: with
        // --ranks=P the attempt is the parallel runtime (the surface
        // --fault-plan perturbs), serially it is hypergraph_repartition.
        RepartitionerConfig rcfg;
        rcfg.partition = pcfg;
        rcfg.partition.incremental = opt.incremental;
        rcfg.alpha = opt.alpha;
        rcfg.num_ranks = opt.ranks;
        rcfg.max_retries = opt.epoch_retries;
        rcfg.epoch_time_budget = opt.epoch_timeout;
        // Two-tier routing: the old partition's cut seeds the drift
        // baseline, and the one-shot delta is unknown (whole epoch), so
        // --incremental=auto escalates while --incremental=on repairs the
        // old partition in place through the gain cache.
        IncrementalRepartitioner inc;
        inc.note_full(connectivity_cut(h, old_p));
        guarded = run_tiered_repartition(RepartAlgorithm::kHypergraphRepart,
                                         h, Graph{}, old_p, rcfg, inc,
                                         EpochDelta{});
        p = std::move(guarded.result.partition);
        cost = guarded.result.cost;
        seconds = guarded.result.seconds;
        moves = guarded.result.plan.moves.size();
      }
      if (guarded.retries > 0 || guarded.degraded)
        std::fprintf(stderr, "repartition %s after %lld failed attempt(s)%s%s\n",
                     guarded.degraded ? "degraded (kept old partition)"
                                      : "succeeded",
                     static_cast<long long>(guarded.retries +
                                            (guarded.degraded ? 1 : 0)),
                     guarded.error.empty() ? "" : ": ",
                     guarded.error.c_str());
      if (check::enabled(opt.check_level)) {
        check::PartitionExpectations expect;
        expect.context = "hgr_cli repartition";
        expect.old_partition = &old_p;
        expect.reported_cut = cost.comm_volume;
        expect.reported_migration = cost.migration_volume;
        check::validate_partition(h, p, opt.check_level, expect);
        std::fprintf(stderr, "validate: repartition ok (%s)\n",
                     check::to_string(opt.check_level));
      }
      if (opt.incremental != IncrementalMode::kOff)
        std::fprintf(stderr, "tier=%s%s%s%s\n", to_string(guarded.tier),
                     guarded.escalated ? " escalated" : "",
                     guarded.tier_reason.empty() ? "" : " reason=",
                     guarded.tier_reason.c_str());
      record_epoch_cost(cost, num_migrated(old_p, p));
      maybe_dump_epoch_csv(opt, h, p, cost, num_migrated(old_p, p), seconds,
                           /*epoch=*/2, guarded.degraded, guarded.retries,
                           guarded.tier, guarded.escalated);
      report_quality(h, p, opt.report);
      std::fprintf(stderr,
                   "alpha=%lld comm=%lld migration=%lld total=%lld "
                   "moves=%zu time=%.3fs\n",
                   static_cast<long long>(opt.alpha),
                   static_cast<long long>(cost.comm_volume),
                   static_cast<long long>(cost.migration_volume),
                   static_cast<long long>(cost.total()), moves, seconds);
      write_parts(p, opt.out_path);
      maybe_dump_trace(opt);
      return 0;
    }
    usage(("unknown mode: " + opt.mode).c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
